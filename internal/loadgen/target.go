package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Request is one generated load request: which corpus program to run
// and under what knobs, plus the expected result for end-to-end
// verification.
type Request struct {
	// Index is the request's position in the arrival schedule.
	Index int
	// Program is the corpus index; Name/Source/Want are its fields,
	// denormalized so targets need no corpus access.
	Program int
	Name    string
	Source  string
	Want    int32

	Machine   string
	Opt       int
	Fuel      uint64
	TimeoutMS int64
}

// Result is what one request came back as. Outcome is "ok", a stable v1
// error code (queue_full, deadline, ...), or one of the generator's own
// codes: "transport_error" (the request never completed at the HTTP
// level) and "wrong_value" (a 200 whose result word disagrees with the
// corpus's expected value — the worst possible outcome, since it means
// the serving stack returned a wrong answer). Cache is the
// X-Risc1-Cache header, or "none" when the response carried none.
type Result struct {
	Outcome string
	Cache   string
	Status  int
	Latency time.Duration
}

// Target executes one request and reports how it went, including its
// latency — measured inside the target so a fake target under a virtual
// clock can script deterministic latencies. Implementations must be
// safe for concurrent use: the open-loop runner issues every in-flight
// arrival at once.
type Target interface {
	Do(ctx context.Context, req Request) Result
}

// runRequestV1 mirrors the POST /v1/run body (risc1.run-request/v1).
// The serve package owns the canonical definition; this is the client
// half of the public wire contract.
type runRequestV1 struct {
	Schema    string `json:"schema"`
	Name      string `json:"name,omitempty"`
	Source    string `json:"source"`
	Machine   string `json:"machine,omitempty"`
	Opt       *int   `json:"opt,omitempty"`
	Fuel      uint64 `json:"fuel,omitempty"`
	TimeoutMS int64  `json:"timeoutMS,omitempty"`
}

// runResponseV1 is the slice of risc1.run-response/v1 the generator
// inspects.
type runResponseV1 struct {
	Status string `json:"status"`
	Value  *int32 `json:"value"`
	Error  *struct {
		Code string `json:"code"`
	} `json:"error"`
}

// HTTPTarget drives one risc1-serve replica over the v1 contract.
type HTTPTarget struct {
	// BaseURL is the replica's root, e.g. "http://localhost:8080".
	BaseURL string
	// Client defaults to a dedicated client with no overall timeout
	// (the server's own deadline cap bounds every request).
	Client *http.Client
	// Clock measures latency; nil means the wall clock.
	Clock Clock
}

// Do posts the request and classifies the response.
func (t *HTTPTarget) Do(ctx context.Context, req Request) Result {
	clk := t.Clock
	if clk == nil {
		clk = WallClock{}
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	opt := req.Opt
	body, err := json.Marshal(runRequestV1{
		Schema:    "risc1.run-request/v1",
		Name:      req.Name,
		Source:    req.Source,
		Machine:   req.Machine,
		Opt:       &opt,
		Fuel:      req.Fuel,
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		return Result{Outcome: "transport_error", Cache: "none"}
	}

	start := clk.Now()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return Result{Outcome: "transport_error", Cache: "none"}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return Result{Outcome: "transport_error", Cache: "none", Latency: clk.Now().Sub(start)}
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := clk.Now().Sub(start)
	if err != nil {
		return Result{Outcome: "transport_error", Cache: "none", Status: resp.StatusCode, Latency: lat}
	}

	res := Result{Status: resp.StatusCode, Latency: lat, Cache: "none"}
	if c := resp.Header.Get("X-Risc1-Cache"); c != "" {
		res.Cache = c
	}
	var rr runResponseV1
	if err := json.Unmarshal(raw, &rr); err != nil {
		res.Outcome = "transport_error"
		return res
	}
	switch {
	case rr.Error != nil:
		res.Outcome = rr.Error.Code
		if res.Outcome == "" {
			res.Outcome = fmt.Sprintf("http_%d", resp.StatusCode)
		}
	case rr.Value != nil && *rr.Value != req.Want:
		res.Outcome = "wrong_value"
	default:
		res.Outcome = "ok"
	}
	return res
}

// RoundRobin fans requests across several targets — the client-side
// stand-in for a dumb load balancer in front of N replicas. The replica
// is chosen by the request's schedule index, not by a shared counter, so
// placement is deterministic even though the open-loop runner issues
// requests concurrently.
type RoundRobin struct {
	Targets []Target
}

// Do forwards to the target the request's index selects.
func (r *RoundRobin) Do(ctx context.Context, req Request) Result {
	return r.Targets[req.Index%len(r.Targets)].Do(ctx, req)
}
