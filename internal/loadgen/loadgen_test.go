package loadgen

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeTarget scripts every result as a pure function of the request —
// no clock reads, no shared state — so a run against it is exactly as
// deterministic as the schedule that drives it.
type fakeTarget struct{}

func (fakeTarget) Do(_ context.Context, req Request) Result {
	// Latency keyed to the program index: hot (low-index, Zipf-favored)
	// programs come back fast, cold ones slow — a crude cache.
	lat := time.Duration(100+50*req.Program) * time.Microsecond
	res := Result{Outcome: "ok", Cache: "hit", Status: 200, Latency: lat}
	if req.Program >= 8 {
		res.Cache = "miss"
	}
	if req.Index%97 == 0 {
		res.Outcome = "queue_full"
		res.Cache = "none"
		res.Status = 429
	}
	return res
}

// TestScheduleDeterministic: the arrival schedule is a pure function of
// (seed, rate, requests) — same offsets, same program choices, run to
// run.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Rate: 100, Requests: 200, Seed: 7}.withDefaults()
	a := schedule(cfg, 32)
	b := schedule(cfg, 32)
	if len(a) != 200 {
		t.Fatalf("len = %d, want 200", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].at < a[i-1].at {
			t.Fatalf("arrival %d not monotone: %v < %v", i, a[i].at, a[i-1].at)
		}
	}
	// A different seed must produce a different schedule.
	cfg2 := cfg
	cfg2.Seed = 8
	c := schedule(cfg2, 32)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestCorpusDeterministic: identical (seed, n) regenerate identical
// programs.
func TestCorpusDeterministic(t *testing.T) {
	a := BuildCorpus(3, 16)
	b := BuildCorpus(3, 16)
	if len(a.Programs) != 16 {
		t.Fatalf("len = %d, want 16", len(a.Programs))
	}
	for i := range a.Programs {
		if a.Programs[i] != b.Programs[i] {
			t.Fatalf("program %d differs", i)
		}
	}
	if a.SourceBytes() == 0 {
		t.Fatal("SourceBytes = 0")
	}
}

// TestZipfSkew: the popularity distribution must actually be skewed —
// the most popular program should dominate — or the cache-path coverage
// the generator promises (hot repeats AND cold misses) is fiction.
func TestZipfSkew(t *testing.T) {
	cfg := Config{Rate: 100, Requests: 2000, Seed: 1}.withDefaults()
	arr := schedule(cfg, 32)
	counts := make(map[int]int)
	for _, a := range arr {
		counts[a.prog]++
	}
	if counts[0] < len(arr)/4 {
		t.Errorf("rank-0 program drew %d of %d arrivals, want a heavy head (>= 1/4)", counts[0], len(arr))
	}
	if len(counts) < 8 {
		t.Errorf("only %d distinct programs drawn, want a long tail (>= 8)", len(counts))
	}
}

// TestRunDeterministicGolden: a fixed seed plus a virtual clock yields a
// byte-identical risc1.loadgen-report/v1 — pinned against testdata so
// any wall-clock leakage or map-order nondeterminism in the report path
// fails loudly. The open-loop runner issues requests concurrently; the
// aggregation is order-independent, so concurrency must not show.
func TestRunDeterministicGolden(t *testing.T) {
	cfg := Config{Rate: 200, Requests: 300, Seed: 42, CorpusSeed: 9, CorpusSize: 16}
	run := func() []byte {
		rep, err := Run(context.Background(), cfg, fakeTarget{}, NewVirtualClock())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return b
	}
	first := run()
	for i := 0; i < 4; i++ {
		if again := run(); !bytes.Equal(first, again) {
			t.Fatalf("run %d differs from first:\n%s\nvs\n%s", i+2, again, first)
		}
	}

	golden := filepath.Join("testdata", "report_fixed.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("report differs from golden (run with -update to regenerate):\n%s", first)
	}
}

// TestRunAccounting: totals reconcile — every offered request completes
// against a fake target, outcome and cache rows each sum to completed.
func TestRunAccounting(t *testing.T) {
	cfg := Config{Rate: 500, Requests: 250, Seed: 5, CorpusSeed: 9, CorpusSize: 16}
	rep, err := Run(context.Background(), cfg, fakeTarget{}, NewVirtualClock())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Schema != "risc1.loadgen-report" || rep.Version != 1 || rep.Mode != "fixed" {
		t.Fatalf("header = %s/%d mode %s", rep.Schema, rep.Version, rep.Mode)
	}
	tot := rep.Totals
	if tot.Offered != 250 || tot.Completed != 250 {
		t.Fatalf("offered/completed = %d/%d, want 250/250", tot.Offered, tot.Completed)
	}
	var byOutcome, byCache uint64
	for _, r := range tot.Outcomes {
		byOutcome += r.Count
	}
	for _, r := range tot.Cache {
		byCache += r.Count
	}
	if byOutcome != tot.Completed || byCache != tot.Completed {
		t.Errorf("rows don't reconcile: outcomes %d cache %d completed %d", byOutcome, byCache, tot.Completed)
	}
	if rep.Latency.Count != tot.Completed {
		t.Errorf("latency count %d != completed %d", rep.Latency.Count, tot.Completed)
	}
}

// TestRunCancel: a cancelled context stops offering promptly; what was
// already offered still completes and is counted.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{Rate: 100, Requests: 100, Seed: 1}, fakeTarget{}, NewVirtualClock())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Totals.Offered != 0 {
		t.Errorf("offered = %d, want 0 with pre-cancelled ctx", rep.Totals.Offered)
	}
}

// TestSweepKnee: the sweep locates the first rate whose rejected
// fraction crosses the threshold, and rows past the knee keep
// accumulating.
func TestSweepKnee(t *testing.T) {
	cfg := SweepConfig{
		Base:            Config{Seed: 11, CorpusSeed: 9, CorpusSize: 8},
		StartRate:       50,
		Factor:          2,
		Steps:           4,
		RequestsPerStep: 200,
		KneeFrac:        0.01,
	}
	tgt := &saturatingTarget{capacity: 150, startRate: 50, factor: 2, requestsPerStep: 200}
	rep, err := Sweep(context.Background(), cfg, tgt, NewVirtualClock())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if rep.Mode != "sweep" || len(rep.Steps) != 4 {
		t.Fatalf("mode %s, %d steps", rep.Mode, len(rep.Steps))
	}
	if rep.Knee == nil {
		t.Fatal("no knee located")
	}
	// 50 and 100 req/s are under capacity; 200 is the first saturated
	// step.
	if rep.Knee.RatePerSec != 200 {
		t.Errorf("knee at %v req/s, want 200", rep.Knee.RatePerSec)
	}
	for i, s := range rep.Steps {
		if s.Offered != 200 {
			t.Errorf("step %d offered %d, want 200", i, s.Offered)
		}
		if s.OK+s.Rejected+s.Errors != s.Offered {
			t.Errorf("step %d rows don't reconcile", i)
		}
	}
	if rep.Steps[0].Rejected != 0 || rep.Steps[3].Rejected == 0 {
		t.Errorf("rejections not monotone with rate: %+v", rep.Steps)
	}
	if rep.Config.SweepStartRate != 50 || rep.Config.SweepSteps != 4 {
		t.Errorf("sweep config not echoed: %+v", rep.Config)
	}
}

// saturatingTarget models a server with a fixed capacity. The target
// can't see the sweep's per-step rate directly, but sweep steps are
// serialized (Run waits for every in-flight request before returning),
// so a global sequence counter maps each request to its step — every
// request in step i draws a sequence number in [i*per, (i+1)*per) no
// matter how its goroutines interleave — and the step determines the
// offered rate. Rejection is then a pure function of (step, Index):
// over capacity, the overflow fraction of each step's indices is turned
// away, deterministically.
type saturatingTarget struct {
	capacity        float64
	startRate       float64
	factor          float64
	requestsPerStep int
	seq             atomic.Uint64
}

func (s *saturatingTarget) Do(_ context.Context, req Request) Result {
	step := int(s.seq.Add(1)-1) / s.requestsPerStep
	rate := s.startRate * math.Pow(s.factor, float64(step))
	if rate > s.capacity {
		frac := 1 - s.capacity/rate
		if float64(req.Index%100)/100 < frac {
			return Result{Outcome: "queue_full", Cache: "none", Status: 429, Latency: time.Millisecond}
		}
	}
	return Result{Outcome: "ok", Cache: "hit", Status: 200, Latency: 200 * time.Microsecond}
}

// TestRoundRobinDeterministic: replica selection depends only on the
// schedule index.
func TestRoundRobinDeterministic(t *testing.T) {
	var hits [3]int
	mk := func(i int) Target {
		return targetFunc(func(_ context.Context, req Request) Result {
			hits[i]++
			return Result{Outcome: fmt.Sprintf("t%d", i)}
		})
	}
	rr := &RoundRobin{Targets: []Target{mk(0), mk(1), mk(2)}}
	for i := 0; i < 9; i++ {
		res := rr.Do(context.Background(), Request{Index: i})
		if want := fmt.Sprintf("t%d", i%3); res.Outcome != want {
			t.Errorf("index %d routed to %s, want %s", i, res.Outcome, want)
		}
	}
	if hits != [3]int{3, 3, 3} {
		t.Errorf("hits = %v, want even 3/3/3", hits)
	}
}

type targetFunc func(ctx context.Context, req Request) Result

func (f targetFunc) Do(ctx context.Context, req Request) Result { return f(ctx, req) }
