package loadgen

import (
	"context"
	"sync"
	"time"
)

// Clock is the generator's only source of time. Everything
// time-dependent — arrival pacing, latency measurement — flows through
// it, which is what the determinism test leans on: with a VirtualClock
// in place of the wall clock, a fixed-seed run produces a byte-identical
// report, proving no wall-clock value leaks into the report body.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks until d has passed or ctx is done, returning ctx's
	// error in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real clock risc1-loadgen runs on.
type WallClock struct{}

// Now implements Clock with time.Now.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock with a timer.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock is a deterministic clock for tests: time advances only
// when someone sleeps on it (or calls Advance), never on its own, so a
// run paced by it is a pure function of the schedule. Sleeps return
// immediately in host time.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at the zero time plus one year
// — a fixed, recognizable epoch far from the zero value's edge cases.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Time{}.AddDate(1, 0, 0)}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d and returns immediately.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves virtual time forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
