// Package loadgen is an open-loop load generator for risc1-serve:
// Poisson arrivals at a configured rate, Zipf-distributed program
// popularity over a progen-derived corpus, per-request outcome and
// cache-state accounting, and log-spaced latency histograms with
// p50/p99/p999 readouts — emitted as a deterministic
// risc1.loadgen-report/v1 document.
//
// Open-loop means arrivals do not wait for completions: the schedule is
// fixed up front (a seeded Poisson process), and a slow server faces a
// growing backlog exactly as it would facing real independent users —
// the regime where admission control earns its keep. This is the
// opposite of a closed loop of K workers, whose arrival rate politely
// degrades with the server and hides the saturation knee (the
// coordinated-omission trap).
//
// Everything random is seeded and everything temporal flows through the
// Clock interface, so a fixed seed plus a virtual clock yields a
// byte-identical report — pinned by a golden test — and a fixed seed on
// the wall clock yields the same schedule with measured latencies.
package loadgen

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"risc1/internal/obs"
)

// Config bounds one load run.
type Config struct {
	// Rate is the mean arrival rate in requests per second (Poisson).
	Rate float64
	// Requests is how many arrivals the schedule holds.
	Requests int
	// Seed drives the arrival process and the popularity draws.
	Seed int64
	// CorpusSeed and CorpusSize shape the program population; the same
	// pair always regenerates the same corpus.
	CorpusSeed int64
	CorpusSize int
	// ZipfS and ZipfV shape popularity (rank-frequency exponent s > 1,
	// v >= 1). Defaults 1.1 and 1: a heavy head with a long tail, so
	// caches see both hot repeats and cold misses.
	ZipfS float64
	ZipfV float64

	// Per-request knobs, passed through to the v1 run request.
	Machine   string
	Opt       int
	Fuel      uint64
	TimeoutMS int64
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Requests <= 0 {
		c.Requests = 500
	}
	if c.CorpusSize <= 0 {
		c.CorpusSize = 32
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
	if c.Opt == 0 {
		c.Opt = 1
	}
	return c
}

// arrival is one scheduled request: an offset from the run's start and
// a corpus program.
type arrival struct {
	at   time.Duration
	prog int
}

// schedule pre-generates the whole arrival sequence from the seed:
// exponential inter-arrival gaps (a Poisson process at cfg.Rate) and
// Zipf-ranked program choices. Generating up front — rather than
// drawing during the run — is what makes the offered load a pure
// function of (seed, rate, requests) regardless of how the target
// behaves.
func schedule(cfg Config, corpusN int) []arrival {
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(corpusN-1))
	arr := make([]arrival, cfg.Requests)
	var t float64 // seconds
	for i := range arr {
		t += r.ExpFloat64() / cfg.Rate
		arr[i] = arrival{
			at:   time.Duration(t * float64(time.Second)),
			prog: int(zipf.Uint64()),
		}
	}
	return arr
}

// aggregator folds concurrent results into order-independent totals, so
// the report is identical no matter how goroutine completions
// interleave.
type aggregator struct {
	mu        sync.Mutex
	outcomes  map[string]uint64
	cache     map[string]uint64
	completed uint64
	hist      *obs.LogHist
}

func newAggregator() *aggregator {
	return &aggregator{
		outcomes: make(map[string]uint64),
		cache:    make(map[string]uint64),
		hist:     obs.DefaultLoadHist(),
	}
}

func (a *aggregator) add(res Result) {
	a.hist.Observe(res.Latency)
	a.mu.Lock()
	a.outcomes[res.Outcome]++
	a.cache[res.Cache]++
	a.completed++
	a.mu.Unlock()
}

// rows renders a count map as name-sorted rows.
func rows(m map[string]uint64) []obs.LoadCount {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]obs.LoadCount, len(names))
	for i, n := range names {
		out[i] = obs.LoadCount{Name: n, Count: m[n]}
	}
	return out
}

// Run executes one fixed-rate open-loop run against tgt, paced by clk,
// and returns the report. A cancelled ctx stops offering new arrivals;
// already-issued requests still complete and are counted (Offered then
// exceeds Completed only if targets themselves abandon requests).
func Run(ctx context.Context, cfg Config, tgt Target, clk Clock) (*obs.LoadReport, error) {
	cfg = cfg.withDefaults()
	corpus := BuildCorpus(cfg.CorpusSeed, cfg.CorpusSize)
	arrivals := schedule(cfg, len(corpus.Programs))

	agg := newAggregator()
	var wg sync.WaitGroup
	start := clk.Now()
	var offered uint64
	for i, a := range arrivals {
		// Sleep the remaining gap to this arrival's offset. Under a
		// lagging scheduler the gap collapses to zero and the generator
		// catches up — offered load tracks the schedule, not the host.
		if err := clk.Sleep(ctx, a.at-clk.Now().Sub(start)); err != nil {
			break
		}
		offered++
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			p := corpus.Programs[a.prog]
			agg.add(tgt.Do(ctx, Request{
				Index:     i,
				Program:   a.prog,
				Name:      p.Name,
				Source:    p.Source,
				Want:      p.Want,
				Machine:   cfg.Machine,
				Opt:       cfg.Opt,
				Fuel:      cfg.Fuel,
				TimeoutMS: cfg.TimeoutMS,
			}))
		}(i, a)
	}
	wg.Wait()

	rep := obs.NewLoadReport("fixed")
	rep.Config = reportConfig(cfg)
	rep.Corpus = obs.LoadCorpus{
		Programs:    len(corpus.Programs),
		Seed:        corpus.Seed,
		SourceBytes: corpus.SourceBytes(),
	}
	agg.mu.Lock()
	rep.Totals = &obs.LoadTotals{
		Offered:   offered,
		Completed: agg.completed,
		Outcomes:  rows(agg.outcomes),
		Cache:     rows(agg.cache),
	}
	agg.mu.Unlock()
	rep.Latency = agg.hist.Summary()
	return rep, ctx.Err()
}

// reportConfig echoes the effective knobs into the report.
func reportConfig(cfg Config) obs.LoadConfig {
	return obs.LoadConfig{
		RatePerSec: cfg.Rate,
		Requests:   cfg.Requests,
		Seed:       cfg.Seed,
		ZipfS:      cfg.ZipfS,
		ZipfV:      cfg.ZipfV,
		Machine:    cfg.Machine,
		Opt:        cfg.Opt,
		Fuel:       cfg.Fuel,
		TimeoutMS:  cfg.TimeoutMS,
	}
}
