package loadgen

import (
	"fmt"
	"math/rand"

	"risc1/internal/cc/progen"
)

// Program is one corpus entry: a MiniC source, the deterministic result
// it must produce, and a stable name for reports and run labels.
type Program struct {
	Name   string
	Source string
	Want   int32
}

// Corpus is the program population traffic draws from. Because it is
// progen-derived, every program is well-typed, halts, and has a known
// result — so the generator can assert end-to-end correctness (the
// "wrong_value" outcome) on top of measuring latency — and because
// popularity is Zipf-distributed over it, the serving stack's hit, miss,
// and coalesced paths all fire in one run.
type Corpus struct {
	Seed     int64
	Programs []Program
}

// BuildCorpus generates n programs from the given seed. Identical
// (seed, n) pairs produce identical corpora on every host — progen draws
// from a seeded math/rand stream — which makes load runs reproducible
// end to end.
func BuildCorpus(seed int64, n int) Corpus {
	if n <= 0 {
		n = 32
	}
	r := rand.New(rand.NewSource(seed))
	c := Corpus{Seed: seed, Programs: make([]Program, n)}
	for i := range c.Programs {
		src, want := progen.Program(r)
		c.Programs[i] = Program{
			Name:   fmt.Sprintf("load-%03d", i),
			Source: src,
			Want:   want,
		}
	}
	return c
}

// SourceBytes totals the corpus's source text, for the report.
func (c Corpus) SourceBytes() int {
	n := 0
	for _, p := range c.Programs {
		n += len(p.Source)
	}
	return n
}
