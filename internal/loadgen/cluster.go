package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strings"

	"risc1/internal/cluster"
)

// ClusterView is one replica's answer to GET /v1/cluster: its own
// membership document, or the error that kept us from reading it.
type ClusterView struct {
	URL string
	Doc *cluster.Response
	Err error
}

// UpSet is the replica's view of the live set — itself plus every peer
// it considers up — sorted, for cross-replica comparison.
func (v ClusterView) UpSet() []string {
	if v.Doc == nil {
		return nil
	}
	var up []string
	for _, m := range v.Doc.Members {
		if m.State == cluster.StateSelf || m.State == cluster.StateUp {
			u := m.URL
			if m.State == cluster.StateSelf && u == "" {
				u = v.URL
			}
			up = append(up, u)
		}
	}
	sort.Strings(up)
	return up
}

// ClusterCheck is the fleet-level verdict risc1-loadgen -cluster
// prints: every replica's view, plus the three properties a healthy
// homogeneous cluster satisfies.
type ClusterCheck struct {
	Views []ClusterView
	// Healthy: every queried replica answered with a v1 cluster document.
	Healthy bool
	// Consistent: every reachable replica reports the same up-set — the
	// views have converged on one ring.
	Consistent bool
	// Compatible: every reachable replica's fingerprint matches every
	// other's — the cluster is homogeneous, so shared cache keys mean
	// the same computation everywhere.
	Compatible bool
}

// CheckCluster queries GET /v1/cluster on every URL and cross-checks
// the views. client may be nil for a default client.
func CheckCluster(ctx context.Context, client *http.Client, urls []string) ClusterCheck {
	if client == nil {
		client = &http.Client{}
	}
	ck := ClusterCheck{Healthy: true, Consistent: true, Compatible: true}
	for _, u := range urls {
		v := ClusterView{URL: strings.TrimRight(u, "/")}
		doc, err := cluster.Fetch(ctx, client, v.URL)
		if err != nil {
			v.Err = err
			ck.Healthy = false
		} else {
			v.Doc = doc
		}
		ck.Views = append(ck.Views, v)
	}
	var ref *ClusterView
	for i := range ck.Views {
		v := &ck.Views[i]
		if v.Doc == nil {
			continue
		}
		if ref == nil {
			ref = v
			continue
		}
		if !slices.Equal(v.UpSet(), ref.UpSet()) {
			ck.Consistent = false
		}
		if !v.Doc.Fingerprint.Compatible(ref.Doc.Fingerprint) {
			ck.Compatible = false
		}
	}
	return ck
}

// OK reports whether the cluster passed every check.
func (ck ClusterCheck) OK() bool { return ck.Healthy && ck.Consistent && ck.Compatible }

// Summary renders the check for humans: one line per replica (state of
// its view) and one verdict line.
func (ck ClusterCheck) Summary() string {
	var b strings.Builder
	for _, v := range ck.Views {
		if v.Err != nil {
			fmt.Fprintf(&b, "%-40s UNREACHABLE: %v\n", v.URL, v.Err)
			continue
		}
		fmt.Fprintf(&b, "%-40s gen=%d up=%d/%d", v.URL, v.Doc.Generation, len(v.UpSet()), len(v.Doc.Members))
		for _, m := range v.Doc.Members {
			if m.State == cluster.StateDown || m.State == cluster.StateIncompatible {
				fmt.Fprintf(&b, " %s=%s", m.URL, m.State)
			}
		}
		b.WriteString("\n")
	}
	verdict := "cluster OK: consistent, compatible, all replicas reachable"
	if !ck.OK() {
		var faults []string
		if !ck.Healthy {
			faults = append(faults, "unreachable replicas")
		}
		if !ck.Consistent {
			faults = append(faults, "divergent membership views")
		}
		if !ck.Compatible {
			faults = append(faults, "incompatible fingerprints")
		}
		verdict = "cluster NOT OK: " + strings.Join(faults, ", ")
	}
	b.WriteString(verdict + "\n")
	return b.String()
}
