package machine

import (
	"context"

	"risc1/internal/cc"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/vax"
)

// ciscMachine adapts *vax.CPU — the VAX-style CISC baseline.
type ciscMachine struct{ c *vax.CPU }

func (m ciscMachine) unwrap() any                          { return m.c }
func (m ciscMachine) Reset(entry uint32)                   { m.c.Reset(entry) }
func (m ciscMachine) Mem() *mem.Memory                     { return m.c.Mem }
func (m ciscMachine) RunContext(ctx context.Context) error { return m.c.RunContext(ctx) }
func (m ciscMachine) RunSteps(n uint64) (bool, error)      { return m.c.RunSteps(n) }
func (m ciscMachine) SetMaxInstructions(n uint64)          { m.c.SetMaxInstructions(n) }
func (m ciscMachine) PC() uint32                           { return m.c.PC() }
func (m ciscMachine) Halted() (bool, error)                { return m.c.Halted() }
func (m ciscMachine) Instructions() uint64                 { return m.c.Trace.Instructions }
func (m ciscMachine) Cycles() uint64                       { return m.c.Trace.Cycles }
func (m ciscMachine) Micros() float64                      { return m.c.Micros() }
func (m ciscMachine) Observe(o *obs.Observer)              { m.c.Obs = o }
func (m ciscMachine) BuildReport(w string) obs.Report      { return m.c.BuildReport(w) }

func (m ciscMachine) Registers() []uint32 {
	regs := make([]uint32, len(m.c.R))
	copy(regs, m.c.R[:])
	return regs
}

func (m ciscMachine) Snapshot() Snapshot { return ciscSnapshot{m.c.Snapshot()} }
func (m ciscMachine) Restore(s Snapshot) { m.c.Restore(s.(ciscSnapshot).s) }

type ciscSnapshot struct{ s *vax.Snapshot }

func (s ciscSnapshot) unwrap() any          { return s.s }
func (s ciscSnapshot) MemPages() int        { return s.s.MemPages() }
func (s ciscSnapshot) Instructions() uint64 { return s.s.Instructions() }
func (s ciscSnapshot) Release()             { s.s.Release() }

// ciscProgram adapts *vax.Program.
type ciscProgram struct{ p *vax.Program }

func (p ciscProgram) unwrap() any                    { return p.p }
func (p ciscProgram) LoadInto(m *mem.Memory) error   { return p.p.LoadInto(m) }
func (p ciscProgram) Symbol(n string) (uint32, bool) { return p.p.Symbol(n) }
func (p ciscProgram) SortedSymbols() []string        { return p.p.SortedSymbols() }
func (p ciscProgram) Entry() uint32                  { return p.p.Entry }
func (p ciscProgram) TextBytes() int                 { return p.p.TextSize }
func (p ciscProgram) Footprint() int64 {
	n := int64(512)
	for _, seg := range p.p.Segments {
		n += int64(len(seg.Data))
	}
	return n + int64(len(p.p.Symbols))*32
}

func ciscConfig(o Options) vax.Config {
	return vax.Config{MemSize: o.MemSize, MaxInstructions: o.Fuel}
}

func init() {
	Register(&Backend{
		Name:        "cisc",
		Aliases:     []string{"vax"},
		Description: "CISC baseline: VAX-style two-address machine with microcoded CALLS/RET",
		CycleNS:     vax.CycleNS,
		Compile: func(src string, o Options) (Program, string, []obs.PassStat, error) {
			prog, text, stats, err := cc.CompileVAX(src, cc.Options{Opt: o.Opt})
			if err != nil {
				return nil, text, nil, err
			}
			return ciscProgram{prog}, text, passStats(stats), nil
		},
		New:     func(o Options) Machine { return ciscMachine{vax.New(ciscConfig(o))} },
		ErrFuel: vax.ErrInstructionLimit,
		Normalize: func(o Options) Options {
			o.DelaySlots = false
			o.Windows = 0
			o.NoWindows = false
			o.NoICache = false
			return o
		},
	})
}
