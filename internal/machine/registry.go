package machine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"risc1/internal/obs"
)

// Backend describes one registered machine: its names, its compiler
// entry point, and its simulator factory. A Backend is registered once
// at init time and immutable afterwards.
type Backend struct {
	// Name is the canonical registry name, stamped into run reports
	// and cache keys.
	Name string
	// Aliases are accepted spellings beyond Name (lookup only — keys
	// and reports always use Name).
	Aliases []string
	// Description is one line for machine listings (GET /v1/machines,
	// CLI help).
	Description string
	// CycleNS is the simulated cycle time in nanoseconds — the
	// same-technology scaling the paper's time comparisons rest on.
	CycleNS float64
	// Compile lowers MiniC source through the shared front end to an
	// assembled program for this machine, returning the program, the
	// generated assembly listing, and the optimization pass counts.
	Compile func(src string, o Options) (Program, string, []obs.PassStat, error)
	// New builds a fresh machine configured by o.
	New func(o Options) Machine
	// ErrFuel is the backend's instruction-limit sentinel; run errors
	// wrap it. IsFuelExhausted checks all of them.
	ErrFuel error
	// Normalize zeroes the Options fields this backend ignores, so
	// requests differing only in irrelevant knobs share cache entries
	// and report configs. It must be idempotent.
	Normalize func(o Options) Options
	// Scrub, when non-nil, removes report sections that describe host
	// machinery rather than the simulated machine (counters that
	// depend on worker history, not on the job). Applied by the
	// execution layer just after BuildReport.
	Scrub func(rep *obs.Report)
}

// ScrubReport applies the backend's report scrub hook, if any.
func (b *Backend) ScrubReport(rep *obs.Report) {
	if b.Scrub != nil {
		b.Scrub(rep)
	}
}

// DefaultName is the backend an empty machine name resolves to — the
// paper's subject machine.
const DefaultName = "risc1"

var (
	backends []*Backend // registration order
	byName   = map[string]*Backend{}
)

// Register adds a backend to the registry under its canonical name and
// aliases. It panics on a duplicate or empty name — registration runs
// at init time, where a clash is a build bug.
func Register(b *Backend) {
	if b.Name == "" {
		panic("machine: Register with empty name")
	}
	for _, name := range append([]string{b.Name}, b.Aliases...) {
		if _, dup := byName[name]; dup {
			panic(fmt.Sprintf("machine: duplicate registration of %q", name))
		}
		byName[name] = b
	}
	backends = append(backends, b)
}

// Lookup resolves a machine name (canonical or alias, case-insensitive;
// empty means DefaultName) to its backend.
func Lookup(name string) (*Backend, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		name = DefaultName
	}
	b, ok := byName[name]
	return b, ok
}

// Canonical resolves a machine name to its canonical registry spelling,
// or an error naming the known machines — the one place "unknown
// machine" messages come from.
func Canonical(name string) (string, error) {
	b, ok := Lookup(name)
	if !ok {
		return "", fmt.Errorf("machine: unknown machine %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return b.Name, nil
}

// Machines lists the registered backends in registration order.
func Machines() []*Backend {
	out := make([]*Backend, len(backends))
	copy(out, backends)
	return out
}

// Names lists the canonical backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(backends))
	for _, b := range backends {
		out = append(out, b.Name)
	}
	sort.Strings(out)
	return out
}

// IsFuelExhausted reports whether err is an instruction-budget
// exhaustion on any registered machine.
func IsFuelExhausted(err error) bool {
	for _, b := range backends {
		if b.ErrFuel != nil && errors.Is(err, b.ErrFuel) {
			return true
		}
	}
	return false
}
