// Package machinetest is the registry conformance suite: the behavioral
// contract every registered backend must satisfy beyond compiling. Run
// drives one backend through the properties the execution layers above
// the registry rely on — deterministic replay, snapshot/restore
// identity, fuel and cancellation semantics, report schema — so a new
// machine that registers and passes this suite works end-to-end through
// batch execution, warm-start, debug sessions, and the HTTP service
// without those layers growing machine-specific code.
package machinetest

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"risc1/internal/machine"
)

// src is the conformance workload: calls, a loop, and a global store,
// exercising each backend's calling convention. It leaves 55 in result.
const src = `
int result;
int add(int a, int b) { return a + b; }
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		s = s + add(i, 1);
	}
	result = s;
	return 0;
}
`

const want = 55

// spinSrc never halts — the fuel and cancellation probes.
const spinSrc = `
int result;
int main() {
	int i;
	i = 0;
	while (i < 2) { i = 0; }
	result = i;
	return 0;
}
`

// Run checks b against the backend contract.
func Run(t *testing.T, b *machine.Backend) {
	t.Helper()

	compile := func(t *testing.T, source string, o machine.Options) machine.Program {
		t.Helper()
		prog, text, _, err := b.Compile(source, o)
		if err != nil {
			t.Fatalf("%s: compile: %v\n%s", b.Name, err, text)
		}
		return prog
	}
	load := func(t *testing.T, m machine.Machine, prog machine.Program) {
		t.Helper()
		m.Reset(prog.Entry())
		if err := prog.LoadInto(m.Mem()); err != nil {
			t.Fatalf("%s: load: %v", b.Name, err)
		}
	}
	result := func(t *testing.T, m machine.Machine, prog machine.Program) int32 {
		t.Helper()
		addr, ok := prog.Symbol("result")
		if !ok {
			t.Fatalf("%s: program has no result symbol", b.Name)
		}
		v, err := m.Mem().LoadWord(addr)
		if err != nil {
			t.Fatalf("%s: read result: %v", b.Name, err)
		}
		return int32(v)
	}
	reportJSON := func(t *testing.T, m machine.Machine) []byte {
		t.Helper()
		rep := m.BuildReport("conformance")
		b.ScrubReport(&rep)
		j, err := rep.JSON()
		if err != nil {
			t.Fatalf("%s: report JSON: %v", b.Name, err)
		}
		return j
	}

	t.Run("determinism", func(t *testing.T) {
		// Two fresh machines over the same program must agree byte for
		// byte — the property every cache layer and differential test
		// upstream assumes.
		var first []byte
		for i := 0; i < 2; i++ {
			prog := compile(t, src, machine.Options{Opt: 1})
			m := b.New(machine.Options{Opt: 1})
			load(t, m, prog)
			if err := m.RunContext(context.Background()); err != nil {
				t.Fatalf("%s: run: %v", b.Name, err)
			}
			if got := result(t, m, prog); got != want {
				t.Fatalf("%s: result = %d, want %d", b.Name, got, want)
			}
			j := reportJSON(t, m)
			if first == nil {
				first = j
			} else if !bytes.Equal(first, j) {
				t.Errorf("%s: reports differ across identical fresh runs", b.Name)
			}
		}
	})

	t.Run("snapshot-restore", func(t *testing.T) {
		// A run replayed from a post-load snapshot must be
		// indistinguishable from the original — warm-start correctness.
		prog := compile(t, src, machine.Options{})
		m := b.New(machine.Options{})
		load(t, m, prog)
		snap := m.Snapshot()
		defer snap.Release()
		if snap.Instructions() != 0 {
			t.Errorf("%s: post-load snapshot instructions = %d, want 0", b.Name, snap.Instructions())
		}
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatalf("%s: cold run: %v", b.Name, err)
		}
		cold := reportJSON(t, m)
		coldVal := result(t, m, prog)

		m.Restore(snap)
		if h, _ := m.Halted(); h {
			t.Fatalf("%s: restored machine reports halted", b.Name)
		}
		if m.Instructions() != 0 {
			t.Errorf("%s: restored instructions = %d, want 0", b.Name, m.Instructions())
		}
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatalf("%s: warm run: %v", b.Name, err)
		}
		if !bytes.Equal(cold, reportJSON(t, m)) {
			t.Errorf("%s: warm report differs from cold", b.Name)
		}
		if got := result(t, m, prog); got != coldVal {
			t.Errorf("%s: warm result = %d, cold %d", b.Name, got, coldVal)
		}
	})

	t.Run("fuel", func(t *testing.T) {
		// Exhausting the budget must fail with the backend's wrapped
		// sentinel, leave the machine unhalted (inspectable), and be
		// classified by the registry helper.
		prog := compile(t, spinSrc, machine.Options{})
		m := b.New(machine.Options{Fuel: 64})
		load(t, m, prog)
		err := m.RunContext(context.Background())
		if err == nil {
			t.Fatalf("%s: spin with fuel 64 returned nil", b.Name)
		}
		if !errors.Is(err, b.ErrFuel) {
			t.Errorf("%s: err = %v, want wrapped %v", b.Name, err, b.ErrFuel)
		}
		if !machine.IsFuelExhausted(err) {
			t.Errorf("%s: IsFuelExhausted(%v) = false", b.Name, err)
		}
		if h, _ := m.Halted(); h {
			t.Errorf("%s: fuel exhaustion halted the machine", b.Name)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		// A cancelled context stops the run on an instruction boundary
		// with the context's error; the machine stays resumable.
		prog := compile(t, spinSrc, machine.Options{})
		m := b.New(machine.Options{})
		load(t, m, prog)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancelled run err = %v, want context.Canceled", b.Name, err)
		}
		if h, _ := m.Halted(); h {
			t.Errorf("%s: cancellation halted the machine", b.Name)
		}
		if halted, err := m.RunSteps(16); halted || err != nil {
			t.Errorf("%s: resume after cancel = (%v, %v), want (false, nil)", b.Name, halted, err)
		}
	})

	t.Run("expired-context", func(t *testing.T) {
		// A context that is already past its deadline must return
		// promptly — before ANY instruction executes — with the
		// canonical context error, leave the machine unhalted, and leave
		// its state restorable. The serving path leans on this: a
		// request whose deadline elapsed while queued must not burn a
		// quantum of simulation before noticing.
		prog := compile(t, spinSrc, machine.Options{})
		m := b.New(machine.Options{})
		load(t, m, prog)
		snap := m.Snapshot()
		defer snap.Release()

		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if err := m.RunContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: expired run err = %v, want context.DeadlineExceeded", b.Name, err)
		}
		if got := m.Instructions(); got != 0 {
			t.Errorf("%s: expired context executed %d instructions, want 0", b.Name, got)
		}
		if h, _ := m.Halted(); h {
			t.Errorf("%s: expired context halted the machine", b.Name)
		}

		// The machine is still whole: restore the post-load snapshot and
		// step it.
		m.Restore(snap)
		if halted, err := m.RunSteps(16); halted || err != nil {
			t.Errorf("%s: restored run after expiry = (%v, %v), want (false, nil)", b.Name, halted, err)
		}
		if got := m.Instructions(); got != 16 {
			t.Errorf("%s: restored machine executed %d instructions, want 16", b.Name, got)
		}
	})

	t.Run("midrun-cancellation", func(t *testing.T) {
		// Cancellation arriving while the guest is executing stops the
		// run on a quantum boundary with the context's error — the
		// cooperative-interrupt path debug sessions and drain use. The
		// spin program never halts, so RunContext returns only because
		// of the cancel.
		prog := compile(t, spinSrc, machine.Options{})
		m := b.New(machine.Options{})
		load(t, m, prog)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- m.RunContext(ctx) }()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: mid-run cancel err = %v, want context.Canceled", b.Name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: RunContext did not return after cancellation", b.Name)
		}
		// No lower bound on Instructions: on a heavily loaded host the
		// cancel can land before the first quantum, which is the
		// expired-context path above — still correct, just not mid-run.
		if h, _ := m.Halted(); h {
			t.Errorf("%s: mid-run cancel halted the machine", b.Name)
		}
		if halted, err := m.RunSteps(16); halted || err != nil {
			t.Errorf("%s: resume after mid-run cancel = (%v, %v), want (false, nil)", b.Name, halted, err)
		}
	})

	t.Run("report-schema", func(t *testing.T) {
		prog := compile(t, src, machine.Options{Opt: 1})
		m := b.New(machine.Options{Opt: 1})
		load(t, m, prog)
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatalf("%s: run: %v", b.Name, err)
		}
		rep := m.BuildReport("conformance")
		if rep.Machine != b.Name {
			t.Errorf("%s: report machine = %q, want the canonical name", b.Name, rep.Machine)
		}
		if rep.Totals.Instructions == 0 || rep.Totals.Cycles == 0 {
			t.Errorf("%s: empty totals %+v", b.Name, rep.Totals)
		}
		if rep.Totals.CPI < 1 {
			t.Errorf("%s: CPI %v < 1", b.Name, rep.Totals.CPI)
		}
		if m.Instructions() != rep.Totals.Instructions || m.Cycles() != rep.Totals.Cycles {
			t.Errorf("%s: machine counters disagree with report totals", b.Name)
		}
		if m.Micros() <= 0 {
			t.Errorf("%s: Micros = %v", b.Name, m.Micros())
		}
		if _, err := rep.JSON(); err != nil {
			t.Errorf("%s: report JSON: %v", b.Name, err)
		}
	})

	t.Run("interface-surface", func(t *testing.T) {
		prog := compile(t, src, machine.Options{})
		if prog.TextBytes() <= 0 {
			t.Errorf("%s: TextBytes = %d", b.Name, prog.TextBytes())
		}
		if prog.Footprint() <= 0 {
			t.Errorf("%s: Footprint = %d", b.Name, prog.Footprint())
		}
		if len(prog.SortedSymbols()) == 0 {
			t.Errorf("%s: no symbols", b.Name)
		}
		m := b.New(machine.Options{})
		if len(m.Registers()) == 0 {
			t.Errorf("%s: no registers", b.Name)
		}
		if b.CycleNS <= 0 {
			t.Errorf("%s: CycleNS = %v", b.Name, b.CycleNS)
		}
		// Normalize must be idempotent and keep the fields every
		// backend honors.
		o := machine.Options{Opt: 1, DelaySlots: true, Windows: 4, NoWindows: true, NoICache: true, MemSize: 1 << 16, Fuel: 99}
		n := b.Normalize(o)
		if b.Normalize(n) != n {
			t.Errorf("%s: Normalize is not idempotent", b.Name)
		}
		if n.Opt != o.Opt || n.MemSize != o.MemSize || n.Fuel != o.Fuel {
			t.Errorf("%s: Normalize dropped a universal field: %+v", b.Name, n)
		}
	})
}
