package machine

import (
	"context"

	"risc1/internal/cc"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/rv32"
)

// rv32Machine adapts *rv32.CPU — the modern delay-slot-free RISC with a
// flat register file, the third point in the design-space comparison.
type rv32Machine struct{ c *rv32.CPU }

func (m rv32Machine) unwrap() any                          { return m.c }
func (m rv32Machine) Reset(entry uint32)                   { m.c.Reset(entry) }
func (m rv32Machine) Mem() *mem.Memory                     { return m.c.Mem }
func (m rv32Machine) RunContext(ctx context.Context) error { return m.c.RunContext(ctx) }
func (m rv32Machine) RunSteps(n uint64) (bool, error)      { return m.c.RunSteps(n) }
func (m rv32Machine) SetMaxInstructions(n uint64)          { m.c.SetMaxInstructions(n) }
func (m rv32Machine) PC() uint32                           { return m.c.PC() }
func (m rv32Machine) Halted() (bool, error)                { return m.c.Halted() }
func (m rv32Machine) Instructions() uint64                 { return m.c.Trace.Instructions }
func (m rv32Machine) Cycles() uint64                       { return m.c.Trace.Cycles }
func (m rv32Machine) Micros() float64                      { return m.c.Micros() }
func (m rv32Machine) Observe(o *obs.Observer)              { m.c.Obs = o }
func (m rv32Machine) BuildReport(w string) obs.Report      { return m.c.BuildReport(w) }

func (m rv32Machine) Registers() []uint32 {
	regs := make([]uint32, len(m.c.R))
	copy(regs, m.c.R[:])
	return regs
}

func (m rv32Machine) Snapshot() Snapshot { return rv32Snapshot{m.c.Snapshot()} }
func (m rv32Machine) Restore(s Snapshot) { m.c.Restore(s.(rv32Snapshot).s) }

type rv32Snapshot struct{ s *rv32.Snapshot }

func (s rv32Snapshot) unwrap() any          { return s.s }
func (s rv32Snapshot) MemPages() int        { return s.s.MemPages() }
func (s rv32Snapshot) Instructions() uint64 { return s.s.Instructions() }
func (s rv32Snapshot) Release()             { s.s.Release() }

// rv32Program adapts *rv32.Program.
type rv32Program struct{ p *rv32.Program }

func (p rv32Program) unwrap() any                    { return p.p }
func (p rv32Program) LoadInto(m *mem.Memory) error   { return p.p.LoadInto(m) }
func (p rv32Program) Symbol(n string) (uint32, bool) { return p.p.Symbol(n) }
func (p rv32Program) SortedSymbols() []string        { return p.p.SortedSymbols() }
func (p rv32Program) Entry() uint32                  { return p.p.Entry }
func (p rv32Program) TextBytes() int                 { return p.p.TextSize }
func (p rv32Program) Footprint() int64 {
	n := int64(512)
	for _, seg := range p.p.Segments {
		n += int64(len(seg.Data))
	}
	return n + int64(len(p.p.Symbols))*32
}

func rv32Config(o Options) rv32.Config {
	return rv32.Config{MemSize: o.MemSize, MaxInstructions: o.Fuel}
}

func init() {
	Register(&Backend{
		Name:        "rv32",
		Aliases:     []string{"riscv"},
		Description: "RV32I-subset RISC: delay-slot-free, flat register file, M-extension mul/div",
		CycleNS:     rv32.CycleNS,
		Compile: func(src string, o Options) (Program, string, []obs.PassStat, error) {
			prog, text, stats, err := cc.CompileRV32(src, cc.Options{Opt: o.Opt})
			if err != nil {
				return nil, text, nil, err
			}
			return rv32Program{prog}, text, passStats(stats), nil
		},
		New:     func(o Options) Machine { return rv32Machine{rv32.New(rv32Config(o))} },
		ErrFuel: rv32.ErrInstructionLimit,
		Normalize: func(o Options) Options {
			o.DelaySlots = false
			o.Windows = 0
			o.NoWindows = false
			o.NoICache = false
			return o
		},
	})
}
