package machine_test

import (
	"errors"
	"fmt"
	"testing"

	"risc1/internal/machine"
	"risc1/internal/machine/machinetest"
)

// TestConformance runs every registered backend through the shared
// conformance suite — the gate a new machine must pass to ship.
func TestConformance(t *testing.T) {
	ms := machine.Machines()
	if len(ms) < 3 {
		t.Fatalf("registered machines = %d, want at least risc1, cisc, rv32", len(ms))
	}
	for _, b := range ms {
		b := b
		t.Run(b.Name, func(t *testing.T) { machinetest.Run(t, b) })
	}
}

func TestLookupAliases(t *testing.T) {
	cases := map[string]string{
		"":      "risc1",
		"risc1": "risc1",
		"risc":  "risc1",
		"RISC1": "risc1",
		" cisc": "cisc",
		"vax":   "cisc",
		"rv32":  "rv32",
		"riscv": "rv32",
	}
	for in, want := range cases {
		b, ok := machine.Lookup(in)
		if !ok || b.Name != want {
			t.Errorf("Lookup(%q) = %v/%v, want %s", in, b, ok, want)
		}
		got, err := machine.Canonical(in)
		if err != nil || got != want {
			t.Errorf("Canonical(%q) = %q, %v, want %s", in, got, err, want)
		}
	}
	if _, ok := machine.Lookup("pdp11"); ok {
		t.Error("Lookup(pdp11) succeeded")
	}
	if _, err := machine.Canonical("pdp11"); err == nil {
		t.Error("Canonical(pdp11) = nil error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := machine.Names()
	want := []string{"cisc", "risc1", "rv32"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", names, want)
	}
}

func TestIsFuelExhausted(t *testing.T) {
	for _, b := range machine.Machines() {
		if !machine.IsFuelExhausted(fmt.Errorf("wrapped: %w", b.ErrFuel)) {
			t.Errorf("%s sentinel not classified", b.Name)
		}
	}
	if machine.IsFuelExhausted(errors.New("other")) {
		t.Error("unrelated error classified as fuel exhaustion")
	}
}

// TestUnwrap pins that bench-style callers can reach the concrete
// simulator and program behind the adapters.
func TestUnwrap(t *testing.T) {
	for _, b := range machine.Machines() {
		m := b.New(machine.Options{})
		if machine.Unwrap(m) == nil {
			t.Errorf("%s: Unwrap(machine) = nil", b.Name)
		}
		if inner := machine.Unwrap(m); inner == m {
			t.Errorf("%s: Unwrap(machine) returned the adapter", b.Name)
		}
		prog, _, _, err := b.Compile("int result; int main() { result = 7; return 0; }", machine.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", b.Name, err)
		}
		if inner := machine.Unwrap(prog); inner == nil || inner == machine.Program(prog) {
			t.Errorf("%s: Unwrap(program) = %v", b.Name, inner)
		}
	}
}
