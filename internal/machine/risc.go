package machine

import (
	"context"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/mem"
	"risc1/internal/obs"
)

// riscMachine adapts *cpu.CPU — the paper's register-window RISC I —
// to the Machine interface.
type riscMachine struct{ c *cpu.CPU }

func (m riscMachine) unwrap() any                          { return m.c }
func (m riscMachine) Reset(entry uint32)                   { m.c.Reset(entry) }
func (m riscMachine) Mem() *mem.Memory                     { return m.c.Mem }
func (m riscMachine) RunContext(ctx context.Context) error { return m.c.RunContext(ctx) }
func (m riscMachine) RunSteps(n uint64) (bool, error)      { return m.c.RunSteps(n) }
func (m riscMachine) SetMaxInstructions(n uint64)          { m.c.SetMaxInstructions(n) }
func (m riscMachine) PC() uint32                           { return m.c.PC() }
func (m riscMachine) Halted() (bool, error)                { return m.c.Halted() }
func (m riscMachine) Instructions() uint64                 { return m.c.Trace.Instructions }
func (m riscMachine) Cycles() uint64                       { return m.c.Trace.Cycles }
func (m riscMachine) Micros() float64                      { return m.c.Micros() }
func (m riscMachine) Observe(o *obs.Observer)              { m.c.Obs = o }
func (m riscMachine) BuildReport(w string) obs.Report      { return m.c.BuildReport(w) }

// Registers returns the active window's 32 visible registers.
func (m riscMachine) Registers() []uint32 {
	regs := make([]uint32, 32)
	for r := range regs {
		regs[r] = m.c.Regs.Get(uint8(r))
	}
	return regs
}

func (m riscMachine) Snapshot() Snapshot { return riscSnapshot{m.c.Snapshot()} }
func (m riscMachine) Restore(s Snapshot) { m.c.Restore(s.(riscSnapshot).s) }

type riscSnapshot struct{ s *cpu.Snapshot }

func (s riscSnapshot) unwrap() any          { return s.s }
func (s riscSnapshot) MemPages() int        { return s.s.MemPages() }
func (s riscSnapshot) Instructions() uint64 { return s.s.Instructions() }
func (s riscSnapshot) Release()             { s.s.Release() }

// riscProgram adapts *asm.Program.
type riscProgram struct{ p *asm.Program }

func (p riscProgram) unwrap() any                    { return p.p }
func (p riscProgram) LoadInto(m *mem.Memory) error   { return p.p.LoadInto(m) }
func (p riscProgram) Symbol(n string) (uint32, bool) { return p.p.Symbol(n) }
func (p riscProgram) SortedSymbols() []string        { return p.p.SortedSymbols() }
func (p riscProgram) Entry() uint32                  { return p.p.Entry }
func (p riscProgram) TextBytes() int                 { return p.p.TextSize }
func (p riscProgram) Footprint() int64 {
	n := int64(512)
	for _, seg := range p.p.Segments {
		n += int64(len(seg.Data))
	}
	return n + int64(len(p.p.Symbols))*32
}

func riscConfig(o Options) cpu.Config {
	return cpu.Config{
		Windows:         o.Windows,
		NoWindows:       o.NoWindows,
		NoICache:        o.NoICache,
		MemSize:         o.MemSize,
		MaxInstructions: o.Fuel,
	}
}

func init() {
	Register(&Backend{
		Name:        "risc1",
		Aliases:     []string{"risc"},
		Description: "RISC I: the paper's register-window RISC (delayed jumps, 8 windows)",
		CycleNS:     cpu.DefaultCycleNS,
		Compile: func(src string, o Options) (Program, string, []obs.PassStat, error) {
			prog, text, stats, err := cc.CompileRISC(src, cc.Options{Opt: o.Opt, DelaySlots: o.DelaySlots})
			if err != nil {
				return nil, text, nil, err
			}
			return riscProgram{prog}, text, passStats(stats), nil
		},
		New:     func(o Options) Machine { return riscMachine{cpu.New(riscConfig(o))} },
		ErrFuel: cpu.ErrInstructionLimit,
		// Every Options field is meaningful on RISC I.
		Normalize: func(o Options) Options { return o },
		// The predecoded-icache counters are host machinery: they
		// depend on pool history and the NoICache escape hatch while
		// every simulated number is identical.
		Scrub: func(rep *obs.Report) { rep.ICache = nil },
	})
}
