// Package machine defines the simulator interface every backend in this
// repository implements, and a name-keyed registry of the backends
// themselves. The paper's comparison is only meaningful because both
// machines are driven identically — same compiler front end, same
// memory system, same observation layer — and this package is where
// that sameness becomes a contract: a Backend bundles a code generator
// entry point, a configuration builder, and a simulator factory, and
// everything above it (batch execution, debug sessions, the HTTP
// service, the bench harness, the CLIs) consumes machines through the
// registry instead of switching on names. Adding a machine means
// registering a Backend and passing the conformance suite
// (machinetest), not growing switch arms across the tree.
package machine

import (
	"context"

	"risc1/internal/cc/opt"
	"risc1/internal/mem"
	"risc1/internal/obs"
)

// Machine is one paused or running simulator with its memory. It is the
// exact surface the execution layers need: batch runs use RunContext,
// debug sessions use RunSteps, warm-start uses Snapshot/Restore, and
// reporting uses BuildReport. Implementations are not safe for
// concurrent use; one goroutine drives a machine at a time.
type Machine interface {
	// Reset fully reinitializes the machine — memory, registers,
	// statistics — and positions it at entry. Reuse after Reset is
	// indistinguishable from a fresh machine (pinned by the cross-job
	// leakage tests).
	Reset(entry uint32)
	// Mem exposes the machine's memory for program loading, result
	// readback, and debugger inspection.
	Mem() *mem.Memory
	// RunContext executes until halt, fault, or fuel exhaustion,
	// stopping between instruction quanta when ctx ends. Cancellation
	// never corrupts state: the machine stops on an instruction
	// boundary and can be resumed.
	RunContext(ctx context.Context) error
	// RunSteps executes at most n instructions. It reports whether the
	// machine halted, with the fault (or the backend's wrapped fuel
	// sentinel) as the error; (false, nil) means the budget n ran out
	// with the program still going.
	RunSteps(n uint64) (halted bool, err error)
	// SetMaxInstructions replaces the fuel budget without rebuilding
	// the machine; zero restores the backend default.
	SetMaxInstructions(n uint64)
	// PC returns the address of the next instruction to execute.
	PC() uint32
	// Halted reports whether the machine stopped, and why (nil for a
	// clean halt).
	Halted() (bool, error)
	// Registers returns the current visible register values (the
	// active window for RISC I). Reads are side-effect-free.
	Registers() []uint32
	// Instructions and Cycles are the cumulative dynamic counts.
	Instructions() uint64
	Cycles() uint64
	// Micros converts the cycle count to simulated microseconds at the
	// backend's cycle time.
	Micros() float64
	// Observe attaches (or with nil detaches) the structured event
	// observer. Attaching an observer never changes simulated state.
	Observe(o *obs.Observer)
	// BuildReport returns the machine-readable run report, stamped
	// with the backend's canonical name.
	BuildReport(workload string) obs.Report
	// Snapshot captures the full machine state copy-on-write; Restore
	// re-enters it in O(touched pages). Restore panics if the snapshot
	// came from a different backend or an incompatible configuration —
	// cache keys upstream make that a programming error, not a runtime
	// condition.
	Snapshot() Snapshot
	Restore(s Snapshot)
}

// Snapshot is a frozen machine state. Snapshots are immutable and may
// be restored into any number of machines concurrently.
type Snapshot interface {
	// MemPages is the number of resident memory pages, for cache
	// byte-budget accounting.
	MemPages() int
	// Instructions is the instruction count at capture time.
	Instructions() uint64
	// Release drops the snapshot's page references.
	Release()
}

// Program is an assembled, immutable guest program. LoadInto and the
// symbol queries only read the program, so one Program may be shared by
// any number of concurrent machines.
type Program interface {
	// LoadInto copies the program's segments into memory.
	LoadInto(m *mem.Memory) error
	// Symbol resolves a label to its address.
	Symbol(name string) (uint32, bool)
	// SortedSymbols lists the defined labels in address order.
	SortedSymbols() []string
	// Entry is the address execution starts at.
	Entry() uint32
	// TextBytes is the static code size — the paper's memory-traffic
	// tables compare it across machines.
	TextBytes() int
	// Footprint approximates the program's host memory cost for the
	// compiled-program cache's byte budget.
	Footprint() int64
}

// Options is every machine-facing knob a compile-and-run request can
// carry, across all backends. It is deliberately one flat comparable
// struct rather than per-backend types: simulator and image caches key
// on it directly, and Backend.Normalize zeroes the fields a backend
// ignores so equivalent requests share cache entries.
type Options struct {
	// Opt is the compiler optimization level (0 or 1).
	Opt int
	// DelaySlots enables the RISC I assembler's delayed-jump optimizer.
	// Meaningless on machines without delay slots.
	DelaySlots bool
	// Windows / NoWindows configure the RISC I register file (zero
	// means the paper's 8 windows). Meaningless on flat-register-file
	// machines.
	Windows   int
	NoWindows bool
	// NoICache disables the RISC I simulator's predecoded instruction
	// cache — host-speed machinery, never architectural state.
	NoICache bool
	// MemSize is the simulated memory size in bytes; zero means the
	// backend default (1 MiB).
	MemSize int
	// Fuel is the instruction budget; zero means the backend default
	// (2^32). Exhausting it fails the run with the backend's wrapped
	// fuel sentinel — classify with IsFuelExhausted.
	Fuel uint64
}

// Unwrap returns the backend-specific simulator or program behind a
// Machine or Program adapter (e.g. *cpu.CPU, *asm.Program), for callers
// like the bench harness that report machine-specific statistics the
// generic interface deliberately omits. Values that are not adapters
// come back unchanged.
func Unwrap(v any) any {
	if u, ok := v.(interface{ unwrap() any }); ok {
		return u.unwrap()
	}
	return v
}

// passStats mirrors compiler pass statistics into the report's own
// type, dropping passes that did nothing (same rule everywhere a report
// is built).
func passStats(stats []opt.Stat) []obs.PassStat {
	var out []obs.PassStat
	for _, s := range stats {
		if s.Rewrites > 0 {
			out = append(out, obs.PassStat{Name: s.Name, Rewrites: s.Rewrites})
		}
	}
	return out
}
