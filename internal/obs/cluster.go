package obs

import (
	"fmt"
	"strings"
)

// ClusterStats is a point-in-time snapshot of a replica's live
// membership view (internal/cluster) plus the serve-layer consequences
// of membership changes: how many relays had to be answered by local
// fallback, and how many times the edge's peer cache was purged because
// the ring generation moved. Exported on /metrics under the
// risc1_cluster_ prefix by peered risc1-serve replicas.
type ClusterStats struct {
	// Gauges: the configured replica set and its current health.
	Members      int `json:"members"`      // configured replicas, this one included
	Up           int `json:"up"`           // live members (this one included)
	Down         int `json:"down"`         // peers past the consecutive-failure threshold
	Incompatible int `json:"incompatible"` // peers refused by the capability handshake

	// Generation increments on every membership transition; replicas
	// whose generations agree have seen the same history length (the
	// member sets themselves are compared by risc1-loadgen -cluster).
	Generation uint64 `json:"generation"`

	// Counters: totals since the membership layer was built.
	Probes        uint64 `json:"probes"`        // health probes sent
	ProbeFailures uint64 `json:"probeFailures"` // probes that failed
	Fallbacks     uint64 `json:"fallbacks"`     // relays answered by local execution
	CachePurges   uint64 `json:"cachePurges"`   // peer-cache invalidations on generation change
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format under the risc1_cluster_ prefix.
func (s ClusterStats) Prometheus() string {
	var b strings.Builder
	row := func(name, kind string, v any) {
		fmt.Fprintf(&b, "# TYPE risc1_cluster_%s %s\nrisc1_cluster_%s %v\n", name, kind, name, v)
	}
	row("members", "gauge", s.Members)
	row("up", "gauge", s.Up)
	row("down", "gauge", s.Down)
	row("incompatible", "gauge", s.Incompatible)
	row("generation", "counter", s.Generation)
	row("probes_total", "counter", s.Probes)
	row("probe_failures_total", "counter", s.ProbeFailures)
	row("fallback_local_total", "counter", s.Fallbacks)
	row("cache_purges_total", "counter", s.CachePurges)
	return b.String()
}
