package obs

import "encoding/json"

// The loadgen report is risc1-loadgen's machine-readable output: the
// measured answer to "what does this serving stack do under
// production-shaped traffic". Like the run and bench reports it is
// versioned and deterministic — no wall-clock timestamps, no map
// iteration, every number a pure function of the request outcomes — so
// a fixed-seed run against a fixed target pins byte-identical bytes,
// and EXPERIMENTS.md entries can be regenerated and diffed.

// Loadgen report schema identifiers. Bump the version on any
// field-breaking change; the golden test in internal/loadgen pins the
// current shape.
const (
	LoadReportSchema  = "risc1.loadgen-report"
	LoadReportVersion = 1
)

// LoadReport describes one load-generation run (mode "fixed": one
// arrival rate) or one saturation sweep (mode "sweep": a ramp of rates
// locating the 429 knee).
type LoadReport struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Mode    string `json:"mode"` // "fixed" | "sweep"

	Config LoadConfig `json:"config"`
	Corpus LoadCorpus `json:"corpus"`

	// Fixed mode: the run's totals and latency distribution.
	Totals  *LoadTotals     `json:"totals,omitempty"`
	Latency *LatencySummary `json:"latency,omitempty"`

	// Sweep mode: one row per rate step, plus the located knee (absent
	// when no step saturated).
	Steps []SweepStep `json:"steps,omitempty"`
	Knee  *SweepKnee  `json:"knee,omitempty"`
}

// LoadConfig echoes the generator's knobs so a report is reproducible
// from its own body.
type LoadConfig struct {
	RatePerSec float64 `json:"ratePerSec,omitempty"` // fixed mode
	Requests   int     `json:"requests"`             // arrivals per run (per step, in sweep mode)
	Seed       int64   `json:"seed"`
	ZipfS      float64 `json:"zipfS"`
	ZipfV      float64 `json:"zipfV"`
	Machine    string  `json:"machine,omitempty"`
	Opt        int     `json:"opt"`
	Fuel       uint64  `json:"fuel,omitempty"`
	TimeoutMS  int64   `json:"timeoutMS,omitempty"`

	// Sweep mode: the rate ramp.
	SweepStartRate float64 `json:"sweepStartRate,omitempty"`
	SweepFactor    float64 `json:"sweepFactor,omitempty"`
	SweepSteps     int     `json:"sweepSteps,omitempty"`
	KneeFrac       float64 `json:"kneeFrac,omitempty"` // rejected fraction that counts as saturated
}

// LoadCorpus describes the progen-derived program set traffic draws
// from.
type LoadCorpus struct {
	Programs    int   `json:"programs"`
	Seed        int64 `json:"seed"`
	SourceBytes int   `json:"sourceBytes"`
}

// LoadTotals is the per-run outcome accounting. Outcomes carries one row
// per distinct request outcome ("ok" or a stable v1 error code, plus the
// generator's own "transport_error" and "wrong_value"), sorted by name;
// Cache does the same for the X-Risc1-Cache states (hit / miss /
// coalesced / none). Rows always sum to Completed.
type LoadTotals struct {
	Offered   uint64      `json:"offered"`
	Completed uint64      `json:"completed"`
	Outcomes  []LoadCount `json:"outcomes"`
	Cache     []LoadCount `json:"cache"`
}

// LoadCount is one (name, count) row of a totals table.
type LoadCount struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// LatencySummary is the request-latency distribution: count, sum, the
// headline quantiles (bucket upper bounds in seconds, conservative),
// and the sparse nonzero buckets backing them.
type LatencySummary struct {
	Count      uint64       `json:"count"`
	SumSeconds float64      `json:"sumSeconds"`
	P50        float64      `json:"p50"`
	P90        float64      `json:"p90"`
	P99        float64      `json:"p99"`
	P999       float64      `json:"p999"`
	Buckets    []LoadBucket `json:"buckets,omitempty"`
}

// LoadBucket is one nonzero histogram bucket: observations at or below
// LE seconds. LE 0 marks the +Inf bucket (always last).
type LoadBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SweepStep is one rate point of a saturation sweep.
type SweepStep struct {
	RatePerSec   float64 `json:"ratePerSec"`
	Offered      uint64  `json:"offered"`
	OK           uint64  `json:"ok"`
	Rejected     uint64  `json:"rejected"` // 429 queue_full
	Errors       uint64  `json:"errors"`   // anything neither ok nor rejected
	RejectedFrac float64 `json:"rejectedFrac"`
	P50          float64 `json:"p50"`
	P99          float64 `json:"p99"`
	P999         float64 `json:"p999"`
}

// SweepKnee is the first rate step whose rejected fraction crossed the
// configured threshold — the measured admission-control knee.
type SweepKnee struct {
	RatePerSec   float64 `json:"ratePerSec"`
	RejectedFrac float64 `json:"rejectedFrac"`
}

// NewLoadReport stamps schema and version.
func NewLoadReport(mode string) *LoadReport {
	return &LoadReport{Schema: LoadReportSchema, Version: LoadReportVersion, Mode: mode}
}

// JSON marshals the report with stable two-space indentation and a
// trailing newline, byte-identical for identical runs.
func (r *LoadReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
