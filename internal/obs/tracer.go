package obs

// Tracer records execution events into a fixed-size ring buffer and
// optionally forwards them to a Sink. The ring keeps the most recent
// events for post-mortem inspection (risc1-run prints its tail when a
// traced program faults) even when no sink is attached; the sink gets
// the full stream, subject to Limit.
//
// A nil *Tracer is inert: the simulators hold an Observer pointer and
// skip all observation work when it is nil, so the traced-off hot loop
// pays one branch and zero allocations.
type Tracer struct {
	ring []Event
	seq  uint64 // events emitted so far; also the next Seq

	sink Sink
	// Limit caps the number of events forwarded to the sink (0 = all).
	// The ring keeps recording past the limit.
	Limit uint64

	err error
}

// DefaultRingSize keeps enough context to see how a fault was reached
// without holding a large trace in memory.
const DefaultRingSize = 1024

// NewTracer builds a tracer with the given ring capacity (0 uses
// DefaultRingSize) forwarding to sink (nil for ring-only tracing).
func NewTracer(ringSize int, sink Sink) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{ring: make([]Event, ringSize), sink: sink}
}

// Emit records one event, assigning its sequence number. Sink errors are
// sticky: the first one stops forwarding and is reported by Err.
func (t *Tracer) Emit(ev Event) {
	ev.Seq = t.seq
	t.seq++
	t.ring[ev.Seq%uint64(len(t.ring))] = ev
	if t.sink == nil || t.err != nil {
		return
	}
	if t.Limit > 0 && ev.Seq >= t.Limit {
		return
	}
	if err := t.sink.Emit(ev); err != nil {
		t.err = err
	}
}

// Events returns the total number of events emitted.
func (t *Tracer) Events() uint64 { return t.seq }

// Ring returns the buffered events, oldest first.
func (t *Tracer) Ring() []Event {
	n := t.seq
	cap64 := uint64(len(t.ring))
	if n > cap64 {
		n = cap64
	}
	out := make([]Event, 0, n)
	start := t.seq - n
	for i := start; i < t.seq; i++ {
		out = append(out, t.ring[i%cap64])
	}
	return out
}

// Tail returns the most recent n buffered events, oldest first.
func (t *Tracer) Tail(n int) []Event {
	r := t.Ring()
	if len(r) > n {
		r = r[len(r)-n:]
	}
	return r
}

// Err reports the first sink error, if any.
func (t *Tracer) Err() error { return t.err }

// Close closes the sink (if any) and returns the first error seen.
func (t *Tracer) Close() error {
	if t.sink != nil {
		if err := t.sink.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
