package obs

import (
	"math"
	"testing"
	"time"
)

// TestLogHistQuantiles: with a known multiset, every quantile lands on
// the conservative bucket upper bound containing that rank.
func TestLogHistQuantiles(t *testing.T) {
	h := NewLogHist(time.Millisecond, 2, 8) // bounds 1ms, 2ms, ..., 128ms
	// 90 observations in the 1ms bucket, 9 in the 4ms bucket, 1 in 64ms.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(3 * time.Millisecond)
	}
	h.Observe(50 * time.Millisecond)

	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 0.001},
		{0.90, 0.001},
		{0.99, 0.004},
		{0.999, 0.064},
		{1.0, 0.064},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
}

// TestLogHistBoundaries: an observation exactly on a bound counts in
// that bucket (le semantics), and overflow lands in the +Inf bucket,
// reported one growth step past the top bound.
func TestLogHistBoundaries(t *testing.T) {
	h := NewLogHist(time.Millisecond, 2, 3) // 1ms, 2ms, 4ms
	h.Observe(2 * time.Millisecond)         // exactly on the 2ms bound
	if got := h.Quantile(1.0); got != 0.002 {
		t.Errorf("on-bound observation reported %v, want 0.002", got)
	}
	h.Observe(time.Second) // beyond the top bound
	if got := h.Quantile(1.0); got != 0.008 {
		t.Errorf("+Inf observation reported %v, want 0.008 (one step past the top)", got)
	}

	buckets := h.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("Buckets = %+v, want 2 nonzero rows", buckets)
	}
	if buckets[0].LE != 0.002 || buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v, want le 0.002 count 1", buckets[0])
	}
	if buckets[1].LE != 0 || buckets[1].Count != 1 {
		t.Errorf("+Inf bucket = %+v, want le 0 count 1", buckets[1])
	}
}

// TestLogHistEmpty: zero observations produce zero quantiles and an
// empty summary rather than a panic.
func TestLogHistEmpty(t *testing.T) {
	h := DefaultLoadHist()
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	s := h.Summary()
	if s.Count != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
}
