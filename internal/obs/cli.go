package obs

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// TraceFormat resolves the trace format for an output path. An explicit
// format wins; otherwise the file extension decides: .jsonl/.ndjson →
// jsonl, .json/.trace → chrome (trace_event, Perfetto-loadable),
// anything else → text.
func TraceFormat(path, explicit string) (string, error) {
	switch explicit {
	case "text", "jsonl", "chrome":
		return explicit, nil
	case "":
	default:
		return "", fmt.Errorf("unknown trace format %q (want text, jsonl or chrome)", explicit)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		return "jsonl", nil
	case ".json", ".trace":
		return "chrome", nil
	}
	return "text", nil
}

// NewSink builds the sink for a resolved format. nsPerCycle and
// symbolize configure the Chrome sink (simulated-time scaling and call
// slice naming) and are ignored by the others.
func NewSink(format string, w io.Writer, nsPerCycle float64, symbolize func(pc uint32) (string, bool)) (Sink, error) {
	switch format {
	case "text":
		return NewTextSink(w), nil
	case "jsonl":
		return NewJSONLSink(w), nil
	case "chrome":
		s := NewChromeSink(w)
		s.NSPerCycle = nsPerCycle
		s.Symbolize = symbolize
		return s, nil
	}
	return nil, fmt.Errorf("unknown trace format %q (want text, jsonl or chrome)", format)
}
