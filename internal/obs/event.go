// Package obs is the observability layer shared by the RISC I simulator
// and the CISC baseline: a ring-buffer instruction tracer with pluggable
// sinks (human text, JSONL, Chrome trace_event for Perfetto), a
// guest-program profiler that attributes simulated cycles per PC and per
// function, and a versioned machine-readable run report. The layer is
// strictly host-side: attaching or detaching it never changes simulated
// cycle accounting, and with everything detached the simulators' hot
// loops pay one nil check and zero allocations per instruction.
package obs

import "fmt"

// Kind classifies a trace event.
type Kind uint8

const (
	// KindInstr is one executed instruction.
	KindInstr Kind = iota
	// KindCall is a window-advancing call (CALL/CALLR/CALLINT on RISC,
	// CALLS on the baseline). It follows the KindInstr event of the
	// calling instruction.
	KindCall
	// KindReturn is a window-retreating return (RET/RETINT, or the
	// baseline's RET).
	KindReturn
	// KindSpill is a register-window overflow writing one activation's
	// private span to the save stack.
	KindSpill
	// KindRefill is a register-window underflow restoring a spilled
	// activation.
	KindRefill
	// KindInterrupt is the delivery of an external interrupt (the
	// hardware CALLINT sequence).
	KindInterrupt
	// KindFault is a machine fault: the simulator halts with an error.
	KindFault
)

// String returns the lower-case event-kind name used by the sinks.
func (k Kind) String() string {
	switch k {
	case KindInstr:
		return "instr"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindSpill:
		return "spill"
	case KindRefill:
		return "refill"
	case KindInterrupt:
		return "interrupt"
	case KindFault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one record in the execution trace. Only the fields meaningful
// for the Kind are set; the rest stay zero.
type Event struct {
	Seq   uint64 // monotonically increasing event number, assigned by the Tracer
	Cycle uint64 // cumulative simulated cycles when the event began
	PC    uint32 // address of the instruction the event belongs to
	Kind  Kind

	Op   string // mnemonic (KindInstr)
	Text string // disassembly or human-readable description
	Cost uint64 // simulated cycles this event accounts for

	Slot  bool // instruction executed in a delayed-jump shadow (KindInstr)
	Taken bool // conditional jump taken (KindInstr of a jump)

	Target uint32 // transfer target (KindCall/KindReturn/KindInterrupt)
	Depth  int    // call depth after the event (KindCall/KindReturn)
	Words  int    // registers moved (KindSpill/KindRefill)
}
