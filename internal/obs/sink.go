package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Sink consumes trace events. Sinks are not safe for concurrent use; the
// simulators are single-threaded and the Tracer forwards events in
// execution order. Close flushes buffered output and finalizes the
// stream (the Chrome sink needs it to close the JSON array).
type Sink interface {
	Emit(ev Event) error
	Close() error
}

// ---------------------------------------------------------------------
// Text sink

// TextSink renders events as human-readable lines, one per event — the
// format behind risc1-run's -trace-out file when no structured format is
// requested.
type TextSink struct {
	w *bufio.Writer
}

// NewTextSink buffers writes to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: bufio.NewWriter(w)}
}

// Emit writes one line.
func (s *TextSink) Emit(ev Event) error {
	var err error
	switch ev.Kind {
	case KindInstr:
		slot := ""
		if ev.Slot {
			slot = "  [slot]"
		}
		_, err = fmt.Fprintf(s.w, "%12d  %08x  %s%s\n", ev.Cycle, ev.PC, ev.Text, slot)
	case KindCall, KindReturn, KindInterrupt:
		_, err = fmt.Fprintf(s.w, "%12d  %08x  -- %s to %08x (depth %d)\n",
			ev.Cycle, ev.PC, ev.Kind, ev.Target, ev.Depth)
	case KindSpill, KindRefill:
		_, err = fmt.Fprintf(s.w, "%12d  %08x  -- window %s: %d regs, %d cycles\n",
			ev.Cycle, ev.PC, ev.Kind, ev.Words, ev.Cost)
	case KindFault:
		_, err = fmt.Fprintf(s.w, "%12d  %08x  -- fault: %s\n", ev.Cycle, ev.PC, ev.Text)
	default:
		_, err = fmt.Fprintf(s.w, "%12d  %08x  -- %s\n", ev.Cycle, ev.PC, ev.Kind)
	}
	return err
}

// Close flushes the buffer.
func (s *TextSink) Close() error { return s.w.Flush() }

// ---------------------------------------------------------------------
// JSONL sink

// jsonEvent is the wire form of an Event: hex PCs for readability,
// omitempty keeps instruction streams compact.
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	Cycle  uint64 `json:"cycle"`
	PC     string `json:"pc"`
	Kind   string `json:"kind"`
	Op     string `json:"op,omitempty"`
	Text   string `json:"text,omitempty"`
	Cost   uint64 `json:"cost,omitempty"`
	Slot   bool   `json:"slot,omitempty"`
	Taken  bool   `json:"taken,omitempty"`
	Target string `json:"target,omitempty"`
	Depth  int    `json:"depth,omitempty"`
	Words  int    `json:"words,omitempty"`
}

// wireEvent converts an Event to its wire form. The JSONL sink and the
// live session stream (risc1-serve SSE) both use it, which is what makes
// a streamed trace comparable line by line with a post-hoc trace file.
func wireEvent(ev Event) jsonEvent {
	je := jsonEvent{
		Seq:   ev.Seq,
		Cycle: ev.Cycle,
		PC:    fmt.Sprintf("0x%08x", ev.PC),
		Kind:  ev.Kind.String(),
		Op:    ev.Op,
		Text:  ev.Text,
		Cost:  ev.Cost,
		Slot:  ev.Slot,
		Taken: ev.Taken,
		Depth: ev.Depth,
		Words: ev.Words,
	}
	if ev.Kind == KindCall || ev.Kind == KindReturn || ev.Kind == KindInterrupt {
		je.Target = fmt.Sprintf("0x%08x", ev.Target)
	}
	return je
}

// MarshalJSON renders the event in the JSONL wire form (hex PCs,
// omitempty for unset fields).
func (ev Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireEvent(ev))
}

// JSONLSink writes one JSON object per line — trivially parseable with
// jq or a five-line script, and safe to stream (no enclosing array).
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink buffers writes to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one JSON line.
func (s *JSONLSink) Emit(ev Event) error {
	return s.enc.Encode(wireEvent(ev))
}

// Close flushes the buffer.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// ---------------------------------------------------------------------
// Chrome trace_event sink

// ChromeSink writes the Chrome trace_event JSON format, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Instructions
// become complete ("X") slices on one track; calls and returns become
// begin/end ("B"/"E") pairs so the call tree renders as a flame graph;
// window spills/refills and interrupts appear as instant slices.
// Timestamps are simulated time: cycles scaled by NSPerCycle.
type ChromeSink struct {
	w     *bufio.Writer
	first bool

	// NSPerCycle converts simulated cycles to trace microseconds (the
	// trace_event unit). Zero defaults to 1000 (1 cycle = 1 µs), which
	// keeps timestamps integral and easy to read.
	NSPerCycle float64

	// Symbolize, when non-nil, names call targets (function slices in
	// the flame graph). Unresolved targets render as hex addresses.
	Symbolize func(pc uint32) (string, bool)
}

// NewChromeSink starts the JSON document on w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: bufio.NewWriter(w), first: true}
}

func (s *ChromeSink) ts(cycle uint64) float64 {
	ns := s.NSPerCycle
	if ns == 0 {
		ns = 1000
	}
	return float64(cycle) * ns / 1000
}

func (s *ChromeSink) emitRaw(m map[string]any) error {
	if s.first {
		if _, err := io.WriteString(s.w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
			return err
		}
		s.first = false
	} else {
		if err := s.w.WriteByte(','); err != nil {
			return err
		}
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = s.w.Write(b)
	return err
}

func (s *ChromeSink) name(pc uint32) string {
	if s.Symbolize != nil {
		if n, ok := s.Symbolize(pc); ok {
			return n
		}
	}
	return fmt.Sprintf("0x%08x", pc)
}

// Emit converts one event to trace_event records.
func (s *ChromeSink) Emit(ev Event) error {
	switch ev.Kind {
	case KindInstr:
		return s.emitRaw(map[string]any{
			"name": ev.Op, "cat": "instr", "ph": "X",
			"ts": s.ts(ev.Cycle), "dur": s.ts(ev.Cost),
			"pid": 0, "tid": 1,
			"args": map[string]any{
				"pc":   fmt.Sprintf("0x%08x", ev.PC),
				"asm":  ev.Text,
				"slot": ev.Slot,
			},
		})
	case KindCall, KindInterrupt:
		return s.emitRaw(map[string]any{
			"name": s.name(ev.Target), "cat": "call", "ph": "B",
			"ts": s.ts(ev.Cycle), "pid": 0, "tid": 0,
			"args": map[string]any{
				"caller": fmt.Sprintf("0x%08x", ev.PC),
				"kind":   ev.Kind.String(),
				"depth":  ev.Depth,
			},
		})
	case KindReturn:
		return s.emitRaw(map[string]any{
			"ph": "E", "ts": s.ts(ev.Cycle), "pid": 0, "tid": 0,
		})
	case KindSpill, KindRefill:
		return s.emitRaw(map[string]any{
			"name": "window " + ev.Kind.String(), "cat": "window", "ph": "X",
			"ts": s.ts(ev.Cycle), "dur": s.ts(ev.Cost),
			"pid": 0, "tid": 2,
			"args": map[string]any{"words": ev.Words},
		})
	case KindFault:
		return s.emitRaw(map[string]any{
			"name": "fault", "cat": "fault", "ph": "i",
			"ts": s.ts(ev.Cycle), "pid": 0, "tid": 0, "s": "g",
			"args": map[string]any{"error": ev.Text, "pc": fmt.Sprintf("0x%08x", ev.PC)},
		})
	}
	return nil
}

// Close terminates the traceEvents array and flushes.
func (s *ChromeSink) Close() error {
	if s.first {
		if _, err := io.WriteString(s.w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
			return err
		}
		s.first = false
	}
	if _, err := io.WriteString(s.w, "\n]}\n"); err != nil {
		return err
	}
	return s.w.Flush()
}
