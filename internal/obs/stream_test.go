package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// emitN pushes n sequenced events through a tracer into the sink, the
// way a simulator would.
func emitN(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		t.Emit(Event{Kind: KindInstr, PC: uint32(4 * i), Op: "add"})
	}
}

// TestStreamDeliversInOrder: a subscriber that keeps up sees every event
// with consecutive sequence numbers and zero drops.
func TestStreamDeliversInOrder(t *testing.T) {
	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	sub := sink.Subscribe(64)

	var got []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ev, dropped, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			if dropped != 0 {
				t.Errorf("keeping-up subscriber dropped %d events", dropped)
			}
			got = append(got, ev)
		}
	}()

	const n = 1000
	for i := 0; i < n; i++ {
		emitN(tr, 1)
		sink.Flush() // deliver each event as it happens
		if i%10 == 0 {
			time.Sleep(time.Microsecond) // let the reader drain
		}
	}
	sink.Close()
	<-done

	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i)
		}
	}
	if s := sink.Stats(); s.Events != n || s.Dropped != 0 {
		t.Errorf("stats = %+v, want %d events, 0 dropped", s, n)
	}
}

// TestStreamStalledSubscriber is the slow-subscriber contract: a
// subscriber that never reads while the simulator emits loses exactly
// (emitted - ring) events, keeps the freshest ring's worth, and the
// drop counter plus sequence gaps reconcile exactly. The emitter is
// never blocked — all N emits complete while the subscriber is stalled.
func TestStreamStalledSubscriber(t *testing.T) {
	const ring = 16
	const n = 10000

	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	sub := sink.Subscribe(ring)

	emitN(tr, n) // fully stalled: no reads at all
	sink.Flush()
	sink.Close()

	wantDropped := uint64(n - ring)
	if d := sub.Dropped(); d != wantDropped {
		t.Fatalf("dropped = %d, want %d", d, wantDropped)
	}

	// Drain what survived: the freshest ring's worth, in order, each
	// delivery reporting a monotonically non-decreasing drop count.
	var seqs []uint64
	lastDropped := uint64(0)
	for {
		ev, dropped, ok := sub.Next(context.Background())
		if !ok {
			break
		}
		if dropped < lastDropped {
			t.Fatalf("drop counter went backwards: %d after %d", dropped, lastDropped)
		}
		lastDropped = dropped
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != ring {
		t.Fatalf("drained %d events, want %d", len(seqs), ring)
	}
	for i, seq := range seqs {
		if want := uint64(n - ring + i); seq != want {
			t.Fatalf("drained event %d has seq %d, want %d (freshest events must survive)", i, seq, want)
		}
	}
	// Reconciliation: the gap before the first delivered event equals
	// the cumulative drop count — no event is unaccounted for.
	if gap := seqs[0]; gap != lastDropped {
		t.Errorf("sequence gap %d != cumulative drops %d", gap, lastDropped)
	}
	if s := sink.Stats(); s.Dropped != wantDropped {
		t.Errorf("sink stats dropped = %d, want %d", s.Dropped, wantDropped)
	}
}

// TestStreamDropsAreGapExact: with a subscriber that reads slowly (in
// bursts), every delivered pair of consecutive events either has
// consecutive seqs or a gap exactly matched by the growth of the drop
// counter at the point of the gap.
func TestStreamDropsAreGapExact(t *testing.T) {
	const ring = 8
	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	sub := sink.Subscribe(ring)

	// Emit in bursts bigger than the ring, reading a couple of events in
	// between, so the stream alternates delivery runs and gaps.
	type delivery struct {
		seq     uint64
		dropped uint64
	}
	var got []delivery
	for burst := 0; burst < 20; burst++ {
		emitN(tr, 3*ring)
		sink.Flush()
		for i := 0; i < 2; i++ {
			ev, dropped, ok := sub.Next(context.Background())
			if !ok {
				t.Fatal("stream ended early")
			}
			got = append(got, delivery{ev.Seq, dropped})
		}
	}
	sink.Close()
	for {
		ev, dropped, ok := sub.Next(context.Background())
		if !ok {
			break
		}
		got = append(got, delivery{ev.Seq, dropped})
	}

	for i := 1; i < len(got); i++ {
		prev, cur := got[i-1], got[i]
		if cur.seq <= prev.seq {
			t.Fatalf("delivery %d: seq %d after %d, not increasing", i, cur.seq, prev.seq)
		}
		if cur.dropped < prev.dropped {
			t.Fatalf("delivery %d: drop counter fell %d -> %d", i, prev.dropped, cur.dropped)
		}
		gap := cur.seq - prev.seq - 1
		dropGrowth := cur.dropped - prev.dropped
		if gap != dropGrowth {
			t.Fatalf("delivery %d: gap of %d events but drop counter grew %d", i, gap, dropGrowth)
		}
	}
	// Global reconciliation: everything emitted was either delivered or
	// counted dropped.
	total := sink.Stats().Events
	if uint64(len(got))+sub.Dropped() != total {
		t.Errorf("delivered %d + dropped %d != emitted %d", len(got), sub.Dropped(), total)
	}
}

// TestStreamConcurrentEmitAndRead runs the emitter and a slow reader
// concurrently (the -race CI job turns this into a locking proof).
func TestStreamConcurrentEmitAndRead(t *testing.T) {
	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	sub := sink.Subscribe(32)

	var wg sync.WaitGroup
	wg.Add(1)
	var delivered uint64
	var lastSeq uint64
	first := true
	go func() {
		defer wg.Done()
		for {
			ev, _, ok := sub.Next(context.Background())
			if !ok {
				return
			}
			if !first && ev.Seq <= lastSeq {
				t.Errorf("seq %d delivered after %d", ev.Seq, lastSeq)
				return
			}
			first = false
			lastSeq = ev.Seq
			delivered++
		}
	}()

	const n = 50000
	emitN(tr, n)
	sink.Flush()
	sink.Close()
	wg.Wait()

	if delivered+sub.Dropped() != n {
		t.Errorf("delivered %d + dropped %d != emitted %d", delivered, sub.Dropped(), n)
	}
}

// TestStreamUnsubscribeAndClose covers detach semantics: an
// unsubscribed consumer's stream ends, late subscribers on a closed
// sink are born ended, and a closed sink discards emits.
func TestStreamUnsubscribeAndClose(t *testing.T) {
	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	a := sink.Subscribe(8)
	b := sink.Subscribe(8)
	emitN(tr, 3)
	sink.Flush()
	sink.Unsubscribe(a)

	// a: drains its 3 buffered events, then ends.
	for i := 0; i < 3; i++ {
		if _, _, ok := a.Next(context.Background()); !ok {
			t.Fatalf("unsubscribed consumer lost buffered event %d", i)
		}
	}
	if _, _, ok := a.Next(context.Background()); ok {
		t.Error("unsubscribed consumer's stream did not end")
	}

	emitN(tr, 2) // b keeps receiving
	sink.Flush()
	sink.Close()
	n := 0
	for {
		if _, _, ok := b.Next(context.Background()); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("b saw %d events, want 5", n)
	}

	late := sink.Subscribe(8)
	if _, _, ok := late.Next(context.Background()); ok {
		t.Error("subscriber on a closed sink delivered an event")
	}
	if err := sink.Emit(Event{}); err != nil {
		t.Errorf("emit on closed sink errored: %v", err)
	}
}

// TestStreamNextHonorsContext: a blocked Next returns when its context
// is cancelled, without ending the stream.
func TestStreamNextHonorsContext(t *testing.T) {
	sink := NewStreamSink()
	sub := sink.Subscribe(8)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, ok := sub.Next(ctx); ok {
		t.Fatal("Next returned an event from an empty stream")
	}
	if sub.Closed() {
		t.Error("context cancellation closed the stream")
	}
	// The stream still works afterwards.
	tr := NewTracer(0, sink)
	emitN(tr, 1)
	sink.Flush()
	if _, _, ok := sub.Next(context.Background()); !ok {
		t.Error("stream dead after a cancelled Next")
	}
}

// TestStreamBatchedDelivery pins the batching contract that keeps the
// fan-out off the simulator's hot path: events below the automatic
// threshold stay in the emitter-owned batch (invisible to subscribers
// and to Stats) until Flush; crossing emitBatch flushes on its own; a
// batch pending when the sink closes is discarded, never counted, so
// delivered + dropped == Stats().Events always reconciles.
func TestStreamBatchedDelivery(t *testing.T) {
	sink := NewStreamSink()
	tr := NewTracer(0, sink)
	sub := sink.Subscribe(2 * emitBatch)

	emitN(tr, 5) // below the threshold: nothing delivered yet
	if s := sink.Stats(); s.Events != 0 {
		t.Fatalf("stats saw %d events before any flush", s.Events)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	if _, _, ok := sub.Next(ctx); ok {
		t.Fatal("subscriber got an event before any flush")
	}
	cancel()

	sink.Flush()
	if s := sink.Stats(); s.Events != 5 {
		t.Fatalf("stats = %d events after flush, want 5", s.Events)
	}
	for i := 0; i < 5; i++ {
		if _, _, ok := sub.Next(context.Background()); !ok {
			t.Fatalf("flushed event %d not delivered", i)
		}
	}

	emitN(tr, emitBatch) // crosses the threshold: flushes automatically
	if s := sink.Stats(); s.Events != 5+emitBatch {
		t.Fatalf("stats = %d events after auto-flush, want %d", s.Events, 5+emitBatch)
	}

	emitN(tr, 3) // pending at close: discarded, not counted
	sink.Close()
	delivered := uint64(5)
	for {
		if _, _, ok := sub.Next(context.Background()); !ok {
			break
		}
		delivered++
	}
	s := sink.Stats()
	if s.Events != 5+emitBatch {
		t.Errorf("stats = %d events after close, want %d (pending batch must not count)", s.Events, 5+emitBatch)
	}
	if delivered+sub.Dropped() != s.Events {
		t.Errorf("delivered %d + dropped %d != emitted %d", delivered, sub.Dropped(), s.Events)
	}
}
