package obs

import (
	"fmt"
	"strings"
)

// CacheStats is a point-in-time snapshot of a content-addressed result
// cache (internal/rcache): the gauges risc1-serve exports on /metrics
// and the cache tests reconcile. Every lookup is classified exactly one
// way — Hits + Misses + Coalesced == lookups — which is what lets the
// serve tests prove a thundering herd collapsed to one execution.
type CacheStats struct {
	// Gauges: current occupancy against the byte budget.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget"`

	// Counters: totals since the cache was built.
	Hits      uint64 `json:"hits"`      // served from a stored entry
	Misses    uint64 `json:"misses"`    // computed by this lookup
	Coalesced uint64 `json:"coalesced"` // waited on another lookup's in-flight compute
	Evictions uint64 `json:"evictions"` // entries dropped to fit the byte budget
	Fills     uint64 `json:"fills"`     // entries stored via Put (peer fills), outside the Do ledger
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format under the given metric prefix (e.g. "risc1_rcache").
func (s CacheStats) Prometheus(prefix string) string {
	var b strings.Builder
	row := func(name, kind string, v any) {
		fmt.Fprintf(&b, "# TYPE %s_%s %s\n%s_%s %v\n", prefix, name, kind, prefix, name, v)
	}
	row("entries", "gauge", s.Entries)
	row("bytes", "gauge", s.Bytes)
	row("budget_bytes", "gauge", s.Budget)
	row("hits_total", "counter", s.Hits)
	row("misses_total", "counter", s.Misses)
	row("coalesced_total", "counter", s.Coalesced)
	row("evictions_total", "counter", s.Evictions)
	row("fills_total", "counter", s.Fills)
	return b.String()
}

// LimiterStats is a point-in-time snapshot of an HTTP admission
// limiter: how many requests hold an execution slot, how many wait in
// the bounded accept queue, and how many have been turned away with
// backpressure (429).
type LimiterStats struct {
	InflightCap int `json:"inflightCap"`
	QueueCap    int `json:"queueCap"`

	// Gauges: current occupancy.
	Inflight int64 `json:"inflight"`
	Waiting  int64 `json:"waiting"`

	// Counters: totals since the limiter was built.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"` // refused with 429 queue_full
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format under the given metric prefix (e.g. "risc1_http").
func (s LimiterStats) Prometheus(prefix string) string {
	var b strings.Builder
	row := func(name, kind string, v any) {
		fmt.Fprintf(&b, "# TYPE %s_%s %s\n%s_%s %v\n", prefix, name, kind, prefix, name, v)
	}
	row("inflight_capacity", "gauge", s.InflightCap)
	row("queue_capacity", "gauge", s.QueueCap)
	row("requests_inflight", "gauge", s.Inflight)
	row("requests_waiting", "gauge", s.Waiting)
	row("requests_admitted_total", "counter", s.Admitted)
	row("requests_rejected_total", "counter", s.Rejected)
	return b.String()
}
