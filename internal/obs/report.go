package obs

import "encoding/json"

// The run report is the machine-readable counterpart of the simulators'
// stdout summaries: every number the paper's tables draw on — dynamic
// instruction mix, cycle breakdown, register-window and memory traffic,
// optionally a profile — in one versioned JSON document. Reports are
// deterministic: identical runs marshal to identical bytes (no wall
// clock, no map iteration), so they diff cleanly and can be committed
// as golden files.

// Schema identifiers and versions. Bump the version on any
// field-breaking change; the golden-file test pins the current shape.
const (
	ReportSchema  = "risc1.run-report"
	ReportVersion = 1

	BenchReportSchema  = "risc1.bench-report"
	BenchReportVersion = 1
)

// Report describes one simulated run of one workload on one machine.
type Report struct {
	Schema   string `json:"schema"`
	Version  int    `json:"version"`
	Machine  string `json:"machine"` // registry name: "risc1", "cisc", "rv32", ...
	Workload string `json:"workload,omitempty"`

	Config  ReportConfig `json:"config"`
	Totals  Totals       `json:"totals"`
	Mix     []MixEntry   `json:"mix"`
	Ops     []MixEntry   `json:"ops,omitempty"`
	Windows *Windows     `json:"windows,omitempty"` // RISC only
	Control *Control     `json:"control,omitempty"` // RISC only
	Cisc    *Cisc        `json:"cisc,omitempty"`    // baseline only
	Rv32    *Rv32        `json:"rv32,omitempty"`    // modern-RISC machine only
	Memory  Memory       `json:"memory"`
	ICache  *ICache      `json:"icache,omitempty"` // host machinery, not simulated state
	Profile *Profile     `json:"profile,omitempty"`
	Exec    *ExecStat    `json:"exec,omitempty"` // batch-engine job accounting
}

// ReportConfig records the simulated machine's organization and the
// tool-chain settings the workload was compiled with.
type ReportConfig struct {
	Windows   int     `json:"windows,omitempty"`
	NoWindows bool    `json:"noWindows,omitempty"`
	MemSize   int     `json:"memSize"`
	CycleNS   float64 `json:"cycleNS"`
	Optimized bool    `json:"optimized,omitempty"` // delay slots filled by the assembler
	// OptLevel is the compiler's machine-independent optimization
	// level (-O0 or -O1); Passes counts the rewrites each IR pass
	// performed. Both are additive: absent for hand-written assembly.
	OptLevel int        `json:"optLevel,omitempty"`
	Passes   []PassStat `json:"passes,omitempty"`
}

// PassStat is one optimization pass's rewrite count. It mirrors the
// compiler's own statistic type so reports don't depend on compiler
// internals.
type PassStat struct {
	Name     string `json:"name"`
	Rewrites int    `json:"rewrites"`
}

// Totals is the cycle and instruction accounting.
type Totals struct {
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	BaseCycles   uint64  `json:"baseCycles"` // Cycles minus TrapCycles
	TrapCycles   uint64  `json:"trapCycles"` // window overflow/underflow + interrupt entry
	Micros       float64 `json:"micros"`     // simulated time at the machine's cycle length
	CPI          float64 `json:"cpi"`
}

// MixEntry is one row of a frequency table (class mix or opcode counts).
type MixEntry struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Frac  float64 `json:"frac"`
}

// Windows is the register-window traffic of a RISC run.
type Windows struct {
	Calls       uint64   `json:"calls"`
	Returns     uint64   `json:"returns"`
	Overflows   uint64   `json:"overflows"`
	Underflows  uint64   `json:"underflows"`
	MaxDepth    int      `json:"maxDepth"`
	SpillWords  uint64   `json:"spillWords"`
	RefillWords uint64   `json:"refillWords"`
	DepthHist   []uint64 `json:"depthHist,omitempty"`
}

// Control is the RISC jump/delay-slot accounting.
type Control struct {
	JumpsTaken    uint64 `json:"jumpsTaken"`
	JumpsUntaken  uint64 `json:"jumpsUntaken"`
	DelaySlotNops uint64 `json:"delaySlotNops"`
}

// Cisc is the baseline's call and branch accounting.
type Cisc struct {
	Calls           uint64 `json:"calls"`
	Returns         uint64 `json:"returns"`
	CallCycles      uint64 `json:"callCycles"`
	CallMemWords    uint64 `json:"callMemWords"`
	BranchesTaken   uint64 `json:"branchesTaken"`
	BranchesUntaken uint64 `json:"branchesUntaken"`
	InstStreamBytes uint64 `json:"instStreamBytes"`
}

// Rv32 is the modern delay-slot-free RISC machine's call and branch
// accounting. Branch bubbles are costBranchTaken × BranchesTaken by
// construction, so the section exposes the raw counts.
type Rv32 struct {
	Calls           uint64 `json:"calls"`
	Returns         uint64 `json:"returns"`
	BranchesTaken   uint64 `json:"branchesTaken"`
	BranchesUntaken uint64 `json:"branchesUntaken"`
	MulDivOps       uint64 `json:"mulDivOps"`
}

// Memory is the data-memory traffic (instruction fetch excluded, as the
// paper separates the streams).
type Memory struct {
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	BytesRead    uint64 `json:"bytesRead"`
	BytesWritten uint64 `json:"bytesWritten"`
	Accesses     uint64 `json:"accesses"`
}

// ICache reports the host-side predecoded instruction cache. It never
// affects simulated results; it is included so host-speed investigations
// have a per-run source of truth.
type ICache struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Fills         uint64 `json:"fills"`
	Invalidations uint64 `json:"invalidations"`
}

// Profile is the profiler's top-N summary embedded in a report.
type Profile struct {
	TotalCycles  uint64    `json:"totalCycles"`
	TrapCycles   uint64    `json:"trapCycles"`
	TopFunctions []FuncRow `json:"topFunctions"`
	HotPCs       []PCRow   `json:"hotPCs"`
}

// ProfileSection summarizes a profiler into a report section: the n
// hottest functions and PCs (0 means 10). symtab and disasm may be nil.
func ProfileSection(p *Profiler, symtab *SymTab, disasm func(pc uint32) (string, bool), n int) *Profile {
	if p == nil {
		return nil
	}
	p.Finalize()
	if n <= 0 {
		n = 10
	}
	var namer func(pc uint32) string
	if symtab != nil {
		namer = symtab.Namer()
	}
	funcs := p.Functions(namer)
	if len(funcs) > n {
		funcs = funcs[:n]
	}
	hot := p.HotPCs(n)
	if disasm != nil {
		for i := range hot {
			if t, ok := disasm(hot[i].PC); ok {
				hot[i].Text = t
			}
		}
	}
	return &Profile{
		TotalCycles:  p.TotalCycles(),
		TrapCycles:   p.TrapCycles(),
		TopFunctions: funcs,
		HotPCs:       hot,
	}
}

// JSON marshals the report with stable two-space indentation and a
// trailing newline. The output is byte-identical for identical runs.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// BenchReport wraps the whole suite's reports — the machine-readable
// form of risc1-bench's tables.
type BenchReport struct {
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Scale   string   `json:"scale"`
	Runs    []Report `json:"runs"`
}

// NewBenchReport stamps schema and version.
func NewBenchReport(scale string, runs []Report) BenchReport {
	return BenchReport{Schema: BenchReportSchema, Version: BenchReportVersion, Scale: scale, Runs: runs}
}

// JSON marshals the bench report like Report.JSON.
func (r *BenchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
