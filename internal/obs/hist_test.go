package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramBuckets: observations land in the right log-spaced
// bucket (bounds are inclusive, Prometheus le semantics) and the
// rendered _bucket series is cumulative.
func TestHistogramBuckets(t *testing.T) {
	v := NewHistogramVec("test_seconds", "outcome")
	v.Observe(50*time.Microsecond, "ok")  // below the first bound -> le="0.0001"
	v.Observe(100*time.Microsecond, "ok") // exactly the first bound -> le="0.0001"
	v.Observe(150*time.Microsecond, "ok") // -> le="0.0002"
	v.Observe(time.Minute, "ok")          // past the top finite bound -> +Inf only

	text := v.Prometheus()
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{outcome="ok",le="0.0001"} 2` + "\n",
		`test_seconds_bucket{outcome="ok",le="0.0002"} 3` + "\n",
		`test_seconds_bucket{outcome="ok",le="+Inf"} 4` + "\n",
		`test_seconds_count{outcome="ok"} 4` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Every finite bucket at or above 0.0002 must hold the cumulative 3.
	if strings.Contains(text, `le="0.0004"} 2`) {
		t.Error("buckets are not cumulative")
	}
}

// TestHistogramVecLabels: separate label values get separate series,
// rendered deterministically (sorted), and the label order follows the
// declaration.
func TestHistogramVecLabels(t *testing.T) {
	v := NewHistogramVec("lat", "outcome", "cache")
	v.Observe(time.Millisecond, "ok", "hit")
	v.Observe(2*time.Millisecond, "ok", "miss")
	v.Observe(3*time.Millisecond, "deadline", "none")

	text := v.Prometheus()
	for _, want := range []string{
		`lat_count{outcome="ok",cache="hit"} 1`,
		`lat_count{outcome="ok",cache="miss"} 1`,
		`lat_count{outcome="deadline",cache="none"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if a, b := v.Prometheus(), v.Prometheus(); a != b {
		t.Error("render is not deterministic")
	}
}

// TestHistogramSum: _sum accumulates in seconds.
func TestHistogramSum(t *testing.T) {
	v := NewHistogramVec("s", "l")
	v.Observe(1500*time.Millisecond, "x")
	v.Observe(500*time.Millisecond, "x")
	if text := v.Prometheus(); !strings.Contains(text, `s_sum{l="x"} 2`+"\n") {
		t.Errorf("sum wrong:\n%s", text)
	}
}
