package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Profiler attributes simulated cycles to guest code: flat per PC, and
// flat plus cumulative per function. Function identity comes from
// observed call targets (every CALL/CALLINT target and the program
// entry), so attribution needs no debug info; the assembler's symbol
// table is used only to name the addresses afterwards.
//
// Cumulative attribution follows the gprof convention: a function's
// cumulative cycles include its callees, and recursive re-entries are
// counted once (cycles propagate to the outermost live instance only).
type Profiler struct {
	flat    map[uint32]*pcStat
	funcs   map[uint32]*funcStat
	stack   []frame
	onStack map[uint32]int
	total   uint64
	trap    uint64 // portion of total charged through Overhead
}

type pcStat struct{ cycles, count uint64 }

type funcStat struct{ calls, cum uint64 }

// frame is one live activation: the function's entry PC and the cycles
// accumulated inside it so far, callees included once they return.
type frame struct {
	fn     uint32
	cycles uint64
}

// NewProfiler returns an empty profiler. Call Start with the program
// entry before running.
func NewProfiler() *Profiler {
	return &Profiler{
		flat:    make(map[uint32]*pcStat),
		funcs:   make(map[uint32]*funcStat),
		onStack: make(map[uint32]int),
	}
}

// Start opens the root activation at the program entry point.
func (p *Profiler) Start(entry uint32) {
	p.push(entry)
}

func (p *Profiler) fn(addr uint32) *funcStat {
	f := p.funcs[addr]
	if f == nil {
		f = &funcStat{}
		p.funcs[addr] = f
	}
	return f
}

func (p *Profiler) push(target uint32) {
	p.fn(target).calls++
	p.onStack[target]++
	p.stack = append(p.stack, frame{fn: target})
}

// Sample charges one executed instruction at pc.
func (p *Profiler) Sample(pc uint32, cost uint64) {
	p.total += cost
	s := p.flat[pc]
	if s == nil {
		s = &pcStat{}
		p.flat[pc] = s
	}
	s.cycles += cost
	s.count++
	if n := len(p.stack); n > 0 {
		p.stack[n-1].cycles += cost
	}
}

// Overhead charges cycles that belong to pc but not to an instruction
// visit — window-trap spill/refill costs and interrupt entry. They join
// the PC's flat cycles (so per-function totals add up to the machine's
// cycle count) without inflating its execution count.
func (p *Profiler) Overhead(pc uint32, cost uint64) {
	p.total += cost
	p.trap += cost
	s := p.flat[pc]
	if s == nil {
		s = &pcStat{}
		p.flat[pc] = s
	}
	s.cycles += cost
	if n := len(p.stack); n > 0 {
		p.stack[n-1].cycles += cost
	}
}

// EnterCall opens an activation of the function at target.
func (p *Profiler) EnterCall(target uint32) { p.push(target) }

// LeaveCall closes the youngest activation, folding its cycles into the
// caller and, unless the function is still live further up the stack
// (recursion), into its cumulative total.
func (p *Profiler) LeaveCall() {
	n := len(p.stack)
	if n == 0 {
		return
	}
	f := p.stack[n-1]
	p.stack = p.stack[:n-1]
	p.onStack[f.fn]--
	if p.onStack[f.fn] == 0 {
		p.fn(f.fn).cum += f.cycles
	}
	if n := len(p.stack); n > 0 {
		p.stack[n-1].cycles += f.cycles
	}
}

// Finalize unwinds activations still live at halt so their cycles reach
// the cumulative totals. Safe to call more than once.
func (p *Profiler) Finalize() {
	for len(p.stack) > 0 {
		p.LeaveCall()
	}
}

// TotalCycles returns all cycles charged to the profiler.
func (p *Profiler) TotalCycles() uint64 { return p.total }

// TrapCycles returns the portion charged through Overhead.
func (p *Profiler) TrapCycles() uint64 { return p.trap }

// FuncRow is one function in the profile, named if a symbol table was
// available.
type FuncRow struct {
	Name     string  `json:"name"`
	Addr     uint32  `json:"-"`
	AddrHex  string  `json:"addr"`
	Calls    uint64  `json:"calls"`
	Flat     uint64  `json:"flatCycles"`
	Cum      uint64  `json:"cumCycles"`
	FlatFrac float64 `json:"flatFrac"`
	CumFrac  float64 `json:"cumFrac"`
}

// Functions returns the per-function profile, hottest flat first. Flat
// cycles of a PC are attributed to the nearest preceding observed
// function entry; name resolves addresses (nil falls back to hex).
// Call Finalize first or cumulative totals will miss live activations.
func (p *Profiler) Functions(name func(pc uint32) string) []FuncRow {
	entries := make([]uint32, 0, len(p.funcs))
	for a := range p.funcs {
		entries = append(entries, a)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	flatByFn := make(map[uint32]uint64, len(entries))
	for pc, s := range p.flat {
		// Rightmost entry <= pc; PCs below every observed entry land on
		// the first one, which keeps the table total equal to TotalCycles.
		i := sort.Search(len(entries), func(i int) bool { return entries[i] > pc })
		if i == 0 {
			if len(entries) == 0 {
				continue
			}
			i = 1
		}
		flatByFn[entries[i-1]] += s.cycles
	}

	out := make([]FuncRow, 0, len(entries))
	for _, a := range entries {
		f := p.funcs[a]
		row := FuncRow{
			Addr:    a,
			AddrHex: fmt.Sprintf("0x%08x", a),
			Calls:   f.calls,
			Flat:    flatByFn[a],
			Cum:     f.cum,
		}
		if name != nil {
			row.Name = name(a)
		} else {
			row.Name = row.AddrHex
		}
		if p.total > 0 {
			row.FlatFrac = float64(row.Flat) / float64(p.total)
			row.CumFrac = float64(row.Cum) / float64(p.total)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// PCRow is one program counter in the flat profile.
type PCRow struct {
	PC     uint32 `json:"-"`
	PCHex  string `json:"pc"`
	Cycles uint64 `json:"cycles"`
	Count  uint64 `json:"count"`
	Text   string `json:"text,omitempty"` // disassembly, when available
}

// HotPCs returns the n hottest program counters by cycles (all of them
// for n <= 0), ties broken by address for determinism.
func (p *Profiler) HotPCs(n int) []PCRow {
	out := make([]PCRow, 0, len(p.flat))
	for pc, s := range p.flat {
		out = append(out, PCRow{PC: pc, PCHex: fmt.Sprintf("0x%08x", pc), Cycles: s.cycles, Count: s.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ---------------------------------------------------------------------
// Symbol table

// Sym is one named address.
type Sym struct {
	Name string
	Addr uint32
}

// SymTab resolves guest addresses to the nearest preceding symbol — the
// assembler's label map turned into a profiler-friendly lookup.
type SymTab struct {
	syms []Sym
}

// NewSymTab builds a table from a name → address map (the Symbols field
// of an assembled program). Addresses may collide; the lexically first
// name at each address wins.
func NewSymTab(symbols map[string]uint32) *SymTab {
	t := &SymTab{syms: make([]Sym, 0, len(symbols))}
	for n, a := range symbols {
		t.syms = append(t.syms, Sym{Name: n, Addr: a})
	}
	sort.Slice(t.syms, func(i, j int) bool {
		if t.syms[i].Addr != t.syms[j].Addr {
			return t.syms[i].Addr < t.syms[j].Addr
		}
		return t.syms[i].Name < t.syms[j].Name
	})
	return t
}

// Lookup returns the symbol covering pc (nearest preceding) and the
// offset of pc past it.
func (t *SymTab) Lookup(pc uint32) (name string, offset uint32, ok bool) {
	i := sort.Search(len(t.syms), func(i int) bool { return t.syms[i].Addr > pc })
	if i == 0 {
		return "", 0, false
	}
	s := t.syms[i-1]
	return s.Name, pc - s.Addr, true
}

// Describe renders pc as "name" or "name+0x8", falling back to hex.
func (t *SymTab) Describe(pc uint32) string {
	name, off, ok := t.Lookup(pc)
	if !ok {
		return fmt.Sprintf("0x%08x", pc)
	}
	if off == 0 {
		return name
	}
	return fmt.Sprintf("%s+0x%x", name, off)
}

// Namer adapts the table to Profiler.Functions and ChromeSink.Symbolize.
func (t *SymTab) Namer() func(pc uint32) string {
	return func(pc uint32) string { return t.Describe(pc) }
}

// ---------------------------------------------------------------------
// Text rendering

// FormatProfile renders the flat/cumulative function table and a
// disassembly-annotated hot-spot listing — the output of the commands'
// -profile flag. disasm may be nil (hot spots print without text);
// symtab may be nil (addresses print as hex).
func FormatProfile(p *Profiler, symtab *SymTab, disasm func(pc uint32) (string, bool), topPCs int) string {
	p.Finalize()
	var b strings.Builder
	var namer func(pc uint32) string
	if symtab != nil {
		namer = symtab.Namer()
	}
	funcs := p.Functions(namer)

	fmt.Fprintf(&b, "guest profile: %d cycles (%d in window traps), %d functions\n\n",
		p.TotalCycles(), p.TrapCycles(), len(funcs))
	fmt.Fprintf(&b, "%12s %7s %12s %7s %9s  %s\n", "flat", "flat%", "cum", "cum%", "calls", "function")
	for _, f := range funcs {
		fmt.Fprintf(&b, "%12d %6.1f%% %12d %6.1f%% %9d  %s\n",
			f.Flat, 100*f.FlatFrac, f.Cum, 100*f.CumFrac, f.Calls, f.Name)
	}

	if topPCs <= 0 {
		topPCs = 20
	}
	hot := p.HotPCs(topPCs)
	fmt.Fprintf(&b, "\nhot spots (top %d of %d pcs):\n", len(hot), len(p.flat))
	fmt.Fprintf(&b, "%12s %9s  %-10s %-22s %s\n", "cycles", "visits", "pc", "location", "instruction")
	for _, r := range hot {
		loc := r.PCHex
		if symtab != nil {
			loc = symtab.Describe(r.PC)
		}
		text := ""
		if disasm != nil {
			if t, ok := disasm(r.PC); ok {
				text = t
			}
		}
		fmt.Fprintf(&b, "%12d %9d  %-10s %-22s %s\n", r.Cycles, r.Count, r.PCHex, loc, text)
	}
	return b.String()
}
