package obs

// Observer bundles the observation tools a simulator can drive. The
// simulators hold a single *Observer and skip all observation work when
// it is nil, so the instruments-off hot loop pays one pointer test per
// instruction and allocates nothing. Either component may be nil:
// tracing without profiling and vice versa both work.
type Observer struct {
	// Tracer receives the structured event stream.
	Tracer *Tracer
	// Prof attributes simulated cycles to guest PCs and functions.
	Prof *Profiler
}

// Finish finalizes the profiler (unwinding live activations) and closes
// the tracer's sink. Call once after the simulated program stops.
func (o *Observer) Finish() error {
	if o == nil {
		return nil
	}
	if o.Prof != nil {
		o.Prof.Finalize()
	}
	if o.Tracer != nil {
		return o.Tracer.Close()
	}
	return nil
}
