package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// LogHist is a log-spaced latency histogram with quantile estimation —
// the load generator's measurement primitive. Unlike Histogram (whose
// bucket layout is frozen so every serve replica exports identical
// Prometheus bounds), LogHist takes its layout at construction, because
// a load test wants finer resolution than an exporter needs, and its
// quantiles are read out once at the end of a run rather than scraped.
//
// Quantiles are conservative: Quantile(q) returns the UPPER bound of the
// bucket holding the q-th observation, so "p99 = 3.2ms" means at least
// 99% of requests finished within 3.2ms. The error is bounded by the
// growth factor, and — unlike a sampled or streaming estimator — the
// answer is a pure function of the observation multiset, which is what
// lets fixed-seed load runs pin byte-identical reports.
type LogHist struct {
	mu     sync.Mutex
	bounds []float64 // bucket upper bounds in seconds, ascending
	counts []uint64  // len(bounds)+1; the last slot is +Inf
	count  uint64
	sum    time.Duration
}

// NewLogHist builds a histogram of n log-spaced buckets starting at
// upper bound lo and growing by the given factor per bucket, plus an
// implicit +Inf bucket. Growth must be > 1.
func NewLogHist(lo time.Duration, growth float64, n int) *LogHist {
	bounds := make([]float64, n)
	v := lo.Seconds()
	for i := range bounds {
		bounds[i] = v
		v *= growth
	}
	return &LogHist{bounds: bounds, counts: make([]uint64, n+1)}
}

// DefaultLoadHist is the load generator's layout: 10 µs to ~1100 s in
// half-octave steps (factor √2, ±~20% quantile resolution).
func DefaultLoadHist() *LogHist {
	return NewLogHist(10*time.Microsecond, math.Sqrt2, 54)
}

// Observe records one duration.
func (h *LogHist) Observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *LogHist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed durations.
func (h *LogHist) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the upper bound (in seconds) of the bucket containing
// the q-th observation, for q in (0, 1]. Observations in the +Inf bucket
// report the top finite bound times the layout's growth — a finite,
// deterministic stand-in. Zero observations return 0.
func (h *LogHist) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// +Inf bucket: report one growth step past the top bound.
			if n := len(h.bounds); n >= 2 {
				return h.bounds[n-1] * (h.bounds[n-1] / h.bounds[n-2])
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1] // unreachable: cum == count >= rank
}

// Buckets returns the nonzero buckets as (upper bound, count) pairs in
// ascending bound order — the sparse form the loadgen report embeds. The
// +Inf bucket renders with a bound of 0 meaning "beyond the top bound";
// it is last, so the shape stays unambiguous.
func (h *LogHist) Buckets() []LoadBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []LoadBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b := LoadBucket{Count: c}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
		}
		out = append(out, b)
	}
	return out
}

// Summary folds the histogram into the report's latency section.
func (h *LogHist) Summary() *LatencySummary {
	return &LatencySummary{
		Count:      h.Count(),
		SumSeconds: h.Sum().Seconds(),
		P50:        h.Quantile(0.50),
		P90:        h.Quantile(0.90),
		P99:        h.Quantile(0.99),
		P999:       h.Quantile(0.999),
		Buckets:    h.Buckets(),
	}
}
