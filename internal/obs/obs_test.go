package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindInstr, PC: uint32(4 * i)})
	}
	if tr.Events() != 10 {
		t.Fatalf("Events = %d, want 10", tr.Events())
	}
	ring := tr.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ring))
	}
	for i, ev := range ring {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.PC != uint32(4*wantSeq) {
			t.Errorf("ring[%d] = seq %d pc %#x, want seq %d pc %#x", i, ev.Seq, ev.PC, wantSeq, 4*wantSeq)
		}
	}
	if tail := tr.Tail(2); len(tail) != 2 || tail[1].Seq != 9 {
		t.Errorf("Tail(2) = %+v, want seqs 8,9", tail)
	}
}

func TestRingShorterThanCapacity(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.Emit(Event{Kind: KindInstr})
	tr.Emit(Event{Kind: KindCall})
	ring := tr.Ring()
	if len(ring) != 2 || ring[0].Seq != 0 || ring[1].Seq != 1 {
		t.Errorf("ring = %+v, want the 2 emitted events in order", ring)
	}
}

func TestTracerLimit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0, NewJSONLSink(&buf))
	tr.Limit = 3
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindInstr, Op: "add"})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 3 {
		t.Errorf("sink received %d events, want Limit=3", lines)
	}
	if tr.Events() != 10 {
		t.Errorf("ring stopped recording at the limit: %d events", tr.Events())
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(0, NewJSONLSink(&buf))
	tr.Emit(Event{Kind: KindInstr, PC: 0x40, Cycle: 7, Cost: 2, Op: "ldl", Text: "ldl r1, r2, 0", Slot: true})
	tr.Emit(Event{Kind: KindCall, PC: 0x44, Target: 0x100, Depth: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if first["pc"] != "0x00000040" || first["kind"] != "instr" || first["op"] != "ldl" || first["slot"] != true {
		t.Errorf("line 1 = %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if second["kind"] != "call" || second["target"] != "0x00000100" {
		t.Errorf("line 2 = %v", second)
	}
}

func TestTextSinkFormats(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	events := []Event{
		{Kind: KindInstr, PC: 0x40, Cycle: 1, Text: "add r1, r0, 1", Slot: true},
		{Kind: KindSpill, PC: 0x44, Cycle: 2, Words: 16, Cost: 36},
		{Kind: KindFault, PC: 0x48, Cycle: 3, Text: "boom"},
	}
	for _, ev := range events {
		if err := s.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"add r1, r0, 1", "[slot]", "window spill: 16 regs", "fault: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestChromeSinkValidJSON asserts the trace_event document parses and
// contains the slice types Perfetto renders (X instructions, B/E call
// frames).
func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.NSPerCycle = 400
	s.Symbolize = func(pc uint32) (string, bool) {
		if pc == 0x100 {
			return "fib", true
		}
		return "", false
	}
	tr := NewTracer(0, s)
	tr.Emit(Event{Kind: KindInstr, PC: 0x40, Cycle: 0, Cost: 1, Op: "call", Text: "call fib"})
	tr.Emit(Event{Kind: KindCall, PC: 0x40, Cycle: 1, Target: 0x100, Depth: 1})
	tr.Emit(Event{Kind: KindInstr, PC: 0x100, Cycle: 1, Cost: 1, Op: "ret"})
	tr.Emit(Event{Kind: KindReturn, PC: 0x100, Cycle: 2, Target: 0x44})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["B"] != 1 || phases["E"] != 1 {
		t.Errorf("phases = %v, want 2 X, 1 B, 1 E", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "B" && ev["name"] != "fib" {
			t.Errorf("call slice name = %v, want symbolized \"fib\"", ev["name"])
		}
	}
}

// TestChromeSinkEmptyTrace asserts Close alone still writes a valid
// document.
func TestChromeSinkEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v\n%s", err, buf.String())
	}
}

// TestProfilerRecursionCountedOnce exercises the gprof rule: cycles of
// a recursive function propagate to its cumulative total exactly once.
func TestProfilerRecursionCountedOnce(t *testing.T) {
	p := NewProfiler()
	p.Start(0x10) // main
	p.Sample(0x10, 1)
	p.EnterCall(0x100) // f
	p.Sample(0x100, 10)
	p.EnterCall(0x100) // f again (recursion)
	p.Sample(0x104, 5)
	p.LeaveCall()
	p.LeaveCall()
	p.Finalize()
	rows := p.Functions(nil)
	byAddr := map[uint32]FuncRow{}
	for _, r := range rows {
		byAddr[r.Addr] = r
	}
	f := byAddr[0x100]
	if f.Calls != 2 {
		t.Errorf("f calls = %d, want 2", f.Calls)
	}
	if f.Cum != 15 {
		t.Errorf("f cumulative = %d, want 15 (counted once, not doubled)", f.Cum)
	}
	if m := byAddr[0x10]; m.Cum != 16 {
		t.Errorf("main cumulative = %d, want 16", m.Cum)
	}
	if p.TotalCycles() != 16 {
		t.Errorf("total = %d, want 16", p.TotalCycles())
	}
}

func TestProfilerOverheadJoinsFlat(t *testing.T) {
	p := NewProfiler()
	p.Start(0x10)
	p.Sample(0x10, 1)
	p.Overhead(0x10, 40)
	p.Finalize()
	hot := p.HotPCs(0)
	if len(hot) != 1 || hot[0].Cycles != 41 || hot[0].Count != 1 {
		t.Errorf("hot = %+v, want one pc with 41 cycles and 1 visit", hot)
	}
	if p.TrapCycles() != 40 {
		t.Errorf("trap cycles = %d, want 40", p.TrapCycles())
	}
}

func TestSymTab(t *testing.T) {
	st := NewSymTab(map[string]uint32{"main": 0x0, "fib": 0x40, "data": 0x1000})
	if got := st.Describe(0x44); got != "fib+0x4" {
		t.Errorf("Describe(0x44) = %q", got)
	}
	if got := st.Describe(0x40); got != "fib" {
		t.Errorf("Describe(0x40) = %q", got)
	}
	if name, off, ok := st.Lookup(0x20); !ok || name != "main" || off != 0x20 {
		t.Errorf("Lookup(0x20) = %q +%#x ok=%v", name, off, ok)
	}
	empty := NewSymTab(nil)
	if _, _, ok := empty.Lookup(0x40); ok {
		t.Error("empty table resolved an address")
	}
}

// TestReportJSONDeterministic builds the same report twice and asserts
// byte equality — the property the golden-file test in internal/bench
// relies on end to end.
func TestReportJSONDeterministic(t *testing.T) {
	build := func() *Report {
		return &Report{
			Schema: ReportSchema, Version: ReportVersion, Machine: "risc1",
			Workload: "w",
			Totals:   Totals{Instructions: 10, Cycles: 12, Micros: 4.8, CPI: 1.2},
			Mix:      []MixEntry{{Name: "alu", Count: 7, Frac: 0.7}},
			Windows:  &Windows{Calls: 1, Returns: 1, DepthHist: []uint64{1, 1}},
		}
	}
	a, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical reports marshal differently")
	}
	var parsed map[string]any
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if parsed["schema"] != ReportSchema {
		t.Errorf("schema = %v", parsed["schema"])
	}
}
