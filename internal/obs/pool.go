package obs

import (
	"fmt"
	"strings"
)

// PoolStats is a point-in-time snapshot of a batch-execution pool: the
// gauges risc1-serve exports on /metrics and tests assert on. The exec
// package fills it; keeping the type here lets reports and tools consume
// pool state without importing the engine.
type PoolStats struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queueCap"`

	// Gauges: the pool's current occupancy.
	Queued  int64 `json:"queued"`  // accepted, waiting for a worker
	Running int64 `json:"running"` // executing on a worker now

	// Counters: totals since the pool started.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"` // finished successfully
	Failed    uint64 `json:"failed"`    // finished with an error
	Retries   uint64 `json:"retries"`   // re-runs after a transient failure
	Panics    uint64 `json:"panics"`    // jobs that panicked (isolated, counted as failures)
	Rejected  uint64 `json:"rejected"`  // refused at submission (pool closed)
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format, one gauge or counter per line under the risc1_pool_ prefix.
func (s PoolStats) Prometheus() string {
	var b strings.Builder
	row := func(name, kind string, v any) {
		fmt.Fprintf(&b, "# TYPE risc1_pool_%s %s\nrisc1_pool_%s %v\n", name, kind, name, v)
	}
	row("workers", "gauge", s.Workers)
	row("queue_capacity", "gauge", s.QueueCap)
	row("jobs_queued", "gauge", s.Queued)
	row("jobs_running", "gauge", s.Running)
	row("jobs_submitted_total", "counter", s.Submitted)
	row("jobs_completed_total", "counter", s.Completed)
	row("jobs_failed_total", "counter", s.Failed)
	row("job_retries_total", "counter", s.Retries)
	row("job_panics_total", "counter", s.Panics)
	row("jobs_rejected_total", "counter", s.Rejected)
	return b.String()
}

// ExecStat is the per-job execution record a batch engine folds into the
// run reports it returns: how the job was bounded and how many attempts
// it took. Deterministic for a given job (wall-clock times deliberately
// excluded), so reports stay byte-identical across pool sizes.
type ExecStat struct {
	Attempts  int    `json:"attempts"`
	FuelLimit uint64 `json:"fuelLimit,omitempty"`
}
