package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Latency histograms for risc1-serve's /metrics: fixed log-spaced
// buckets rendered in the Prometheus histogram text format. The bucket
// bounds are compiled in rather than configurable — every replica
// exports the same bounds, which is what makes fleet-wide quantile
// aggregation valid.

// latencyBuckets are the upper bounds in seconds: log-spaced, doubling
// from 100 µs to ~26 s. Requests are bounded by -max-timeout (10 s by
// default), so the top finite bucket comfortably covers every outcome
// short of a stall; +Inf is implicit.
var latencyBuckets = func() []float64 {
	b := make([]float64, 19)
	v := 100e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram counts observations into the fixed log-spaced latency
// buckets. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64 // per-bucket counts (not cumulative); +Inf is the last slot
	count   uint64
	sum     time.Duration
}

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, len(latencyBuckets)+1)}
}

// Observe records one request duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramVec partitions latency observations by a small fixed set of
// label values — risc1-serve labels by request outcome and result-cache
// state. Unknown label combinations materialize on first use; the label
// value sets are bounded by construction (stable error codes, three
// cache states), so the metric family stays small.
type HistogramVec struct {
	name   string
	labels []string

	mu sync.Mutex
	hs map[string]*Histogram // key: label values joined with \x00
}

// NewHistogramVec names the metric family and its label names, in render
// order.
func NewHistogramVec(name string, labels ...string) *HistogramVec {
	return &HistogramVec{name: name, labels: labels, hs: make(map[string]*Histogram)}
}

// Observe records d under the given label values (one per label name).
func (v *HistogramVec) Observe(d time.Duration, values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s observed with %d label values, want %d", v.name, len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	h, ok := v.hs[key]
	if !ok {
		h = NewHistogram()
		v.hs[key] = h
	}
	v.mu.Unlock()
	h.Observe(d)
}

// Prometheus renders the whole family in the Prometheus histogram text
// exposition format: cumulative _bucket series with le labels, plus
// _sum and _count, one set per label combination, sorted for stable
// output.
func (v *HistogramVec) Prometheus() string {
	v.mu.Lock()
	keys := make([]string, 0, len(v.hs))
	for k := range v.hs {
		keys = append(keys, k)
	}
	hs := make(map[string]*Histogram, len(v.hs))
	for k, h := range v.hs {
		hs[k] = h
	}
	v.mu.Unlock()
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s histogram\n", v.name)
	for _, key := range keys {
		h := hs[key]
		values := strings.Split(key, "\x00")
		var lb strings.Builder
		for i, name := range v.labels {
			if i > 0 {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, "%s=%q", name, values[i])
		}
		labels := lb.String()

		h.mu.Lock()
		cum := uint64(0)
		for i, bound := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(&b, "%s_bucket{%s,le=%q} %d\n", v.name, labels, formatBound(bound), cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(&b, "%s_bucket{%s,le=\"+Inf\"} %d\n", v.name, labels, cum)
		fmt.Fprintf(&b, "%s_sum{%s} %g\n", v.name, labels, h.sum.Seconds())
		fmt.Fprintf(&b, "%s_count{%s} %d\n", v.name, labels, h.count)
		h.mu.Unlock()
	}
	return b.String()
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for these magnitudes.
func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
