package obs

import (
	"context"
	"sync"
)

// StreamSink fans the trace-event stream out to any number of live
// subscribers, each behind its own fixed-size ring buffer. It is the
// bridge between a single-threaded simulator (which emits events through
// a Tracer, in execution order, as fast as it runs) and any number of
// slow, remote, or stalled consumers (SSE clients on risc1-serve's
// session API): Emit never blocks and never allocates per subscriber, so
// a consumer that stops reading can never stall the simulator.
//
// When a subscriber's ring is full the OLDEST buffered event is
// overwritten — a live debugging stream wants the freshest events — and
// the subscriber's cumulative drop counter advances. Events carry the
// Tracer's sequence numbers, so a consumer sees every gap exactly: the
// delta between consecutive delivered Seq values minus one is the number
// of events it lost there, and the drop counter delivered alongside each
// event reconciles with the sum of those gaps.
//
// Delivery is BATCHED: Emit appends to an emitter-owned pending slice
// with no synchronization at all, and events reach subscribers when the
// batch flushes — automatically every emitBatch events, or on an
// explicit Flush (sessions flush at every command-loop chunk boundary,
// so a paused session never has undelivered events and a running one
// streams with at most a chunk of latency). This is what keeps the
// fan-out inside the simulator's 5% overhead budget
// (session.TestStalledSubscriberOverhead): the mutex is taken once per
// batch instead of once per event, the ring writes happen in one tight
// loop instead of scattered between instructions where every access
// misses cache, and a subscriber lagging by a whole batch has its ring
// overwritten wholesale — drops counted by arithmetic, only the
// freshest ringSize events copied.
//
// The whole flushed side shares ONE mutex (the sink's), and a
// subscriber's wakeup channel is only touched when a reader is actually
// blocked in Next.
//
// Emit and Flush must be called from the simulator's goroutine (or
// otherwise serialized); Subscribe, Unsubscribe, Close, Stats and the
// Subscriber's methods may be called from any goroutine. Close does NOT
// flush — it may race the emitter — so a batch still pending when the
// sink closes is discarded, never counted.
type StreamSink struct {
	// pending is the emitter-owned batch. Only Emit and Flush touch it,
	// and both run on the emitter's goroutine, so it needs no lock.
	pending []Event

	mu      sync.Mutex
	subs    []*Subscriber
	events  uint64
	dropped uint64
	closed  bool
}

// emitBatch is the automatic flush threshold. Large enough that the
// per-batch lock and the subscribers' ring writes amortize to well under
// a nanosecond per event; small enough that a free-running simulator
// (~GHz event rates) still flushes many times per millisecond.
const emitBatch = 1024

// StreamStats is a point-in-time snapshot of a fan-out stream: how many
// events the simulator offered, how many were dropped across all
// subscribers, and how many subscribers are attached now.
type StreamStats struct {
	Subscribers int    `json:"subscribers"`
	Events      uint64 `json:"events"`  // events offered to the fan-out
	Dropped     uint64 `json:"dropped"` // ring overwrites, summed over subscribers
}

// NewStreamSink returns an empty fan-out with no subscribers.
func NewStreamSink() *StreamSink {
	return &StreamSink{pending: make([]Event, 0, emitBatch)}
}

// Emit implements Sink: the event joins the pending batch without
// blocking and without locking; the batch flushes to subscribers when it
// reaches emitBatch events (or on Flush). It never returns an error — a
// full subscriber ring drops the oldest buffered event instead of
// failing the trace. Emitter's goroutine only.
func (s *StreamSink) Emit(ev Event) error {
	s.pending = append(s.pending, ev)
	if len(s.pending) >= emitBatch {
		s.Flush()
	}
	return nil
}

// Flush delivers the pending batch to every subscriber under one lock
// acquisition. A no-op when nothing is pending; on a closed sink the
// batch is discarded uncounted. Emitter's goroutine only.
func (s *StreamSink) Flush() {
	if len(s.pending) == 0 {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.events += uint64(len(s.pending))
		for _, sub := range s.subs {
			s.dropped += sub.pushBatch(s.pending)
		}
	}
	s.mu.Unlock()
	s.pending = s.pending[:0]
}

// Close implements Sink: every subscriber's stream ends after its
// buffered events are drained. A still-pending batch is discarded (Close
// may be called from any goroutine, so it cannot touch the emitter-owned
// batch); further Emit calls are discarded; further Subscribe calls
// return an already-ended subscriber.
func (s *StreamSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, sub := range s.subs {
		sub.closeLocked()
	}
	s.subs = nil
	return nil
}

// Subscribe attaches a new consumer with a ring of the given capacity
// (<= 0 uses DefaultRingSize). The subscriber sees events flushed after
// this call — including the emitter's batch pending at attach time; on
// a closed sink it is born already ended.
func (s *StreamSink) Subscribe(ringSize int) *Subscriber {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	sub := &Subscriber{
		mu:     &s.mu,
		buf:    make([]Event, ringSize),
		notify: make(chan struct{}, 1),
	}
	s.mu.Lock()
	if s.closed {
		sub.closed = true
	} else {
		s.subs = append(s.subs, sub)
	}
	s.mu.Unlock()
	return sub
}

// Unsubscribe detaches sub and ends its stream. Safe to call for a
// subscriber that was already detached (e.g. by Close).
func (s *StreamSink) Unsubscribe(sub *Subscriber) {
	s.mu.Lock()
	for i, cand := range s.subs {
		if cand == sub {
			last := len(s.subs) - 1
			s.subs[i] = s.subs[last]
			s.subs[last] = nil
			s.subs = s.subs[:last]
			break
		}
	}
	sub.closeLocked()
	s.mu.Unlock()
}

// Stats snapshots the fan-out's counters. Counts cover flushed events
// only; while the simulator is mid-batch, up to emitBatch events are
// still pending and not yet visible here.
func (s *StreamSink) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StreamStats{Subscribers: len(s.subs), Events: s.events, Dropped: s.dropped}
}

// Subscriber is one consumer's view of a StreamSink: a fixed ring of
// undelivered events plus a cumulative drop counter. Next is safe for
// one reading goroutine; the ring is filled from the sink's side. All
// state is guarded by the owning sink's mutex (mu), so the emitter pays
// no second lock per subscriber.
type Subscriber struct {
	mu *sync.Mutex // the owning sink's lock

	buf     []Event // ring
	start   int     // index of the oldest undelivered event
	n       int     // undelivered events buffered
	dropped uint64  // cumulative overwrites; monotonically increasing
	closed  bool
	waiting bool // a reader is blocked in Next awaiting a wakeup

	notify chan struct{} // 1-buffered wakeup for a blocked Next
}

// pushBatch appends a flush batch, overwriting the oldest buffered
// events when the ring is full, and returns how many events were
// dropped. Called by the sink with the shared mutex held.
//
// The fast path is what keeps a stalled subscriber nearly free for the
// emitter: a batch at least as large as the ring leaves the ring holding
// exactly the batch's freshest ringSize events, so everything older —
// buffered or in the batch — is dropped by arithmetic and only ringSize
// events are ever copied, no matter how far behind the reader is. The
// wakeup channel is touched at most once per batch, and only when a
// reader is actually blocked.
func (b *Subscriber) pushBatch(evs []Event) (dropped uint64) {
	if b.closed || len(evs) == 0 {
		return 0
	}
	r := len(b.buf)
	if len(evs) >= r {
		// The batch alone would overwrite the whole ring.
		dropped = uint64(b.n + len(evs) - r)
		copy(b.buf, evs[len(evs)-r:])
		b.start = 0
		b.n = r
	} else {
		for _, ev := range evs {
			if b.n == r {
				// Full: the oldest event gives way so the stream stays live.
				b.buf[b.start] = ev
				b.start++
				if b.start == r {
					b.start = 0
				}
				dropped++
			} else {
				i := b.start + b.n
				if i >= r {
					i -= r
				}
				b.buf[i] = ev
				b.n++
			}
		}
	}
	b.dropped += dropped
	if b.waiting {
		b.waiting = false
		select {
		case b.notify <- struct{}{}:
		default:
		}
	}
	return dropped
}

// closeLocked ends the stream. Called with the shared mutex held.
func (b *Subscriber) closeLocked() {
	b.closed = true
	if b.waiting {
		b.waiting = false
		select {
		case b.notify <- struct{}{}:
		default:
		}
	}
}

// Next blocks until an event is available, the stream ends, or ctx is
// done. It returns the event, the subscriber's cumulative drop count as
// of that event's delivery (monotonically increasing; compare against
// the previous value to detect a gap), and ok. ok false means the
// stream ended — the buffer is drained first, so no buffered event is
// ever lost to a close.
func (b *Subscriber) Next(ctx context.Context) (ev Event, dropped uint64, ok bool) {
	for {
		b.mu.Lock()
		if b.n > 0 {
			ev = b.buf[b.start]
			b.start++
			if b.start == len(b.buf) {
				b.start = 0
			}
			b.n--
			dropped = b.dropped
			b.mu.Unlock()
			return ev, dropped, true
		}
		if b.closed {
			dropped = b.dropped
			b.mu.Unlock()
			return Event{}, dropped, false
		}
		b.waiting = true
		b.mu.Unlock()
		select {
		case <-b.notify:
		case <-ctx.Done():
			b.mu.Lock()
			b.waiting = false
			dropped = b.dropped
			b.mu.Unlock()
			return Event{}, dropped, false
		}
	}
}

// Dropped returns the cumulative count of events this subscriber lost to
// ring overwrites. It only ever increases.
func (b *Subscriber) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Closed reports whether the stream has ended (buffered events may still
// be readable).
func (b *Subscriber) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}
