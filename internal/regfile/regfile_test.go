package regfile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPhysicalRegs(t *testing.T) {
	if got := DefaultConfig.PhysicalRegs(); got != 138 {
		t.Errorf("default (8-window) file: %d physical registers, want 138", got)
	}
	if got := GoldConfig.PhysicalRegs(); got != 74 {
		t.Errorf("gold (4-window) file: %d physical registers, want 74", got)
	}
	if got := DefaultConfig.MaxResident(); got != 7 {
		t.Errorf("8 windows should hold 7 activations, got %d", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with 1 window should panic")
		}
	}()
	New(Config{Windows: 1})
}

func TestZeroRegister(t *testing.T) {
	f := New(DefaultConfig)
	f.Set(0, 12345)
	if got := f.Get(0); got != 0 {
		t.Errorf("r0 must read 0, got %d", got)
	}
}

func TestGlobalsSharedAcrossWindows(t *testing.T) {
	f := New(DefaultConfig)
	f.Set(5, 99)
	f.Call()
	if got := f.Get(5); got != 99 {
		t.Errorf("global r5 not shared across call: got %d", got)
	}
	f.Set(5, 100)
	f.Return()
	if got := f.Get(5); got != 100 {
		t.Errorf("global r5 not shared across return: got %d", got)
	}
}

func TestParameterOverlap(t *testing.T) {
	f := New(DefaultConfig)
	// Caller writes outgoing params r10..r15.
	for i := uint8(10); i <= 15; i++ {
		f.Set(i, 1000+uint32(i))
	}
	f.Call()
	// Callee must see them as incoming params r26..r31, with no copying.
	for i := uint8(26); i <= 31; i++ {
		want := 1000 + uint32(i) - 16
		if got := f.Get(i); got != want {
			t.Errorf("callee r%d = %d, want %d", i, got, want)
		}
	}
	// Callee writes a result into its HIGH block.
	f.Set(26, 424242)
	f.Return()
	if got := f.Get(10); got != 424242 {
		t.Errorf("caller r10 = %d, want callee's result 424242", got)
	}
}

func TestLocalsArePrivate(t *testing.T) {
	f := New(DefaultConfig)
	f.Set(16, 7)
	f.Set(25, 8)
	f.Call()
	if f.Get(16) != 0 || f.Get(25) != 0 {
		t.Error("callee locals should start fresh (zero), not alias caller's")
	}
	f.Set(16, 1111)
	f.Return()
	if got := f.Get(16); got != 7 {
		t.Errorf("caller local r16 clobbered by callee: got %d, want 7", got)
	}
	if got := f.Get(25); got != 8 {
		t.Errorf("caller local r25 clobbered by callee: got %d, want 8", got)
	}
}

func TestOverflowAndUnderflow(t *testing.T) {
	f := New(Config{Windows: 3}) // 2 resident activations max
	f.Set(16, 1)                 // depth-0 local
	if sp := f.Call(); sp != nil {
		t.Fatal("first call should not overflow")
	}
	f.Set(16, 2)
	sp := f.Call() // third activation: depth-0 must spill
	if sp == nil {
		t.Fatal("second call should overflow with 3 windows")
	}
	if len(sp) != SpillRegs {
		t.Fatalf("spill returned %d regs, want %d", len(sp), SpillRegs)
	}
	f.Set(16, 3)

	if f.Return() {
		t.Fatal("return to resident parent should not underflow")
	}
	if got := f.Get(16); got != 2 {
		t.Errorf("depth-1 local = %d, want 2", got)
	}
	if !f.Return() {
		t.Fatal("return to spilled activation should underflow")
	}
	f.Refill(sp)
	if got := f.Get(16); got != 1 {
		t.Errorf("depth-0 local after refill = %d, want 1", got)
	}
	if f.Stats.Overflows != 1 || f.Stats.Underflows != 1 {
		t.Errorf("stats = %+v, want 1 overflow and 1 underflow", f.Stats)
	}
}

func TestDepthTracking(t *testing.T) {
	f := New(DefaultConfig)
	f.Call()
	f.Call()
	f.Return()
	if f.Depth() != 1 || f.MaxDepth() != 2 {
		t.Errorf("depth = %d (max %d), want 1 (max 2)", f.Depth(), f.MaxDepth())
	}
}

// TestDeepRecursionPreservesLocals is the key correctness property of the
// window mechanism: under arbitrarily deep recursion with spills and
// refills, every activation gets back exactly the locals and incoming
// parameters it had, for any window count.
func TestDeepRecursionPreservesLocals(t *testing.T) {
	for _, windows := range []int{2, 3, 4, 8, 16} {
		f := New(Config{Windows: windows})
		var stack [][]uint32 // simulated memory save stack
		var recurse func(depth int)
		recurse = func(depth int) {
			// Mark this activation's locals with its depth.
			for r := uint8(16); r <= 25; r++ {
				f.Set(r, uint32(depth*100+int(r)))
			}
			if depth < 40 {
				f.Set(10, uint32(depth)) // outgoing param
				if sp := f.Call(); sp != nil {
					stack = append(stack, sp)
				}
				if got := f.Get(26); got != uint32(depth) {
					t.Fatalf("w=%d depth=%d: param not passed, got %d", windows, depth, got)
				}
				recurse(depth + 1)
				if f.Return() {
					sp := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					f.Refill(sp)
				}
			}
			for r := uint8(16); r <= 25; r++ {
				want := uint32(depth*100 + int(r))
				if got := f.Get(r); got != want {
					t.Fatalf("w=%d depth=%d: local r%d = %d, want %d", windows, depth, r, got, want)
				}
			}
		}
		recurse(0)
		if len(stack) != 0 {
			t.Errorf("w=%d: %d unmatched spills", windows, len(stack))
		}
		if f.Stats.Overflows != f.Stats.Underflows {
			t.Errorf("w=%d: %d overflows vs %d underflows", windows, f.Stats.Overflows, f.Stats.Underflows)
		}
	}
}

// TestRandomCallTreeProperty drives a random call tree and checks locals
// round-trip, using testing/quick for seed generation.
func TestRandomCallTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		windows := 2 + r.Intn(7)
		rf := New(Config{Windows: windows})
		var stack [][]uint32
		ok := true
		var walk func(depth int)
		walk = func(depth int) {
			marker := r.Uint32()
			rf.Set(20, marker)
			kids := r.Intn(3)
			if depth > 25 {
				kids = 0
			}
			for k := 0; k < kids; k++ {
				if sp := rf.Call(); sp != nil {
					stack = append(stack, sp)
				}
				walk(depth + 1)
				if rf.Return() {
					rf.Refill(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
				}
				if rf.Get(20) != marker {
					ok = false
				}
			}
		}
		walk(0)
		return ok && len(stack) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOverflowRateFallsWithWindows(t *testing.T) {
	// The shape behind the paper's overflow figure: more windows, fewer
	// overflows, for the same call pattern.
	rate := func(windows int) float64 {
		f := New(Config{Windows: windows})
		var stack [][]uint32
		var fib func(n int)
		fib = func(n int) {
			if n < 2 {
				return
			}
			for _, k := range []int{n - 1, n - 2} {
				if sp := f.Call(); sp != nil {
					stack = append(stack, sp)
				}
				fib(k)
				if f.Return() {
					f.Refill(stack[len(stack)-1])
					stack = stack[:len(stack)-1]
				}
			}
		}
		fib(12)
		return float64(f.Stats.Overflows) / float64(f.Stats.Calls)
	}
	r2, r4, r8 := rate(2), rate(4), rate(8)
	if !(r2 > r4 && r4 > r8) {
		t.Errorf("overflow rate should fall with window count: w2=%.3f w4=%.3f w8=%.3f", r2, r4, r8)
	}
}

func TestReset(t *testing.T) {
	f := New(DefaultConfig)
	f.Set(5, 1)
	f.Set(16, 2)
	f.Call()
	f.Reset()
	if f.Get(5) != 0 || f.Get(16) != 0 || f.CWP() != 0 || f.Depth() != 0 {
		t.Error("Reset did not restore power-on state")
	}
	if f.Stats != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
}

func TestGetSetOutOfRangePanics(t *testing.T) {
	f := New(DefaultConfig)
	for _, fn := range []func(){
		func() { f.Get(32) },
		func() { f.Set(32, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range register access should panic")
				}
			}()
			fn()
		}()
	}
}
