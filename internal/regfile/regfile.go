// Package regfile implements the overlapping register windows of RISC I.
//
// The register file is a set of global registers plus a circular buffer of
// windows. Each procedure sees 32 registers: the globals (r0..r9, with r0
// hardwired to zero), six HIGH registers (r26..r31) holding parameters
// passed *to* it, ten LOCAL registers (r16..r25), and six LOW registers
// (r10..r15) for parameters it passes *down*. A CALL advances the current
// window pointer (CWP); the caller's LOW registers physically are the
// callee's HIGH registers, so parameter passing moves no data at all.
//
// With W windows at most W-1 activations can be resident at once: the
// youngest activation's LOW block physically aliases the HIGH block of the
// window two past the oldest, so a W-th activation would clobber live
// registers. A call that would exceed the limit raises a window overflow
// and the processor spills the oldest activation's private span (its HIGH
// block plus locals, 16 registers) to a memory stack; a return to a
// spilled activation raises an underflow and refills it. The package
// tracks both events so the paper's overflow-rate experiments can be
// regenerated.
package regfile

import "fmt"

// Config fixes the geometry of the register file. The visible layout
// (which r-numbers are global/low/local/high) is fixed by the ISA; Config
// chooses only how many physical windows back it.
type Config struct {
	// Windows is the number of register windows in the circular buffer.
	// Must be at least 2 (W windows support W-1 resident activations).
	Windows int
}

// DefaultConfig is the organization described in the ISCA 1981 paper:
// eight windows, i.e. 10 + 8*16 = 138 physical registers.
var DefaultConfig = Config{Windows: 8}

// GoldConfig approximates the fabricated RISC I "Gold" chip, which shipped
// with fewer windows than the paper's description (78 physical registers
// on silicon). With the paper's 16-registers-per-window overlap scheme the
// closest realizable configuration is four windows (10 + 4*16 = 74).
var GoldConfig = Config{Windows: 4}

// Geometry constants fixed by the instruction set's visible layout.
const (
	numGlobals    = 10 // r0..r9
	overlap       = 6  // r10..r15 shared with callee / r26..r31 with caller
	numLocals     = 10 // r16..r25
	regsPerWindow = numLocals + overlap
	visibleRegs   = 32
	// SpillRegs is the number of registers saved or restored by one
	// window overflow or underflow: one activation's private span (its
	// HIGH overlap block plus its locals).
	SpillRegs = regsPerWindow
)

// PhysicalRegs returns the total number of physical registers the
// configuration implies — the number the paper's machine-characteristics
// table reports.
func (c Config) PhysicalRegs() int { return numGlobals + c.Windows*regsPerWindow }

// MaxResident returns how many activations fit on chip simultaneously.
func (c Config) MaxResident() int { return c.Windows - 1 }

func (c Config) validate() error {
	if c.Windows < 2 {
		return fmt.Errorf("regfile: need at least 2 windows, got %d", c.Windows)
	}
	return nil
}

// File is the physical register file plus the window bookkeeping.
type File struct {
	cfg      Config
	globals  [numGlobals]uint32
	buf      []uint32 // Windows * regsPerWindow circular buffer
	cwp      int      // window of the current (youngest) activation
	oldest   int      // window of the oldest resident activation
	resident int      // number of resident activations, 1..Windows-1
	depth    int      // call depth relative to reset, for statistics
	maxDepth int

	// Stats accumulates window events for the paper's experiments.
	Stats Stats
}

// Stats counts window traffic.
type Stats struct {
	Calls      uint64 // window-advancing calls
	Returns    uint64 // window-retreating returns
	Overflows  uint64 // calls that required a spill
	Underflows uint64 // returns that required a refill
}

// New creates a register file. It panics on an invalid configuration,
// which is a programming error, not runtime input.
func New(cfg Config) *File {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	f := &File{cfg: cfg, buf: make([]uint32, cfg.Windows*regsPerWindow)}
	f.Reset()
	return f
}

// Config returns the geometry the file was built with.
func (f *File) Config() Config { return f.cfg }

// CWP returns the current window pointer (0..Windows-1).
func (f *File) CWP() int { return f.cwp }

// Resident returns the number of on-chip activations.
func (f *File) Resident() int { return f.resident }

// Depth returns the call depth relative to reset (can go negative if the
// program returns above its entry activation).
func (f *File) Depth() int { return f.depth }

// MaxDepth returns the deepest call depth observed since Reset.
func (f *File) MaxDepth() int { return f.maxDepth }

// index maps a visible register number in window w to a physical slot in
// the circular buffer, or -1 for globals.
//
// Window w's HIGH block and locals live at w*16..w*16+15; its LOW block is
// window (w+1)'s HIGH block — that aliasing is the whole point.
func (f *File) index(w int, r uint8) int {
	switch {
	case r < numGlobals:
		return -1
	case r < 16: // LOW: shared with callee's HIGH
		next := (w + 1) % f.cfg.Windows
		return next*regsPerWindow + int(r-10)
	case r < 26: // LOCAL
		return w*regsPerWindow + overlap + int(r-16)
	default: // HIGH: shared with caller's LOW
		return w*regsPerWindow + int(r-26)
	}
}

// Get reads visible register r in the current window. r0 always reads 0.
func (f *File) Get(r uint8) uint32 {
	if r >= visibleRegs {
		panic(fmt.Sprintf("regfile: register r%d out of range", r))
	}
	if r == 0 {
		return 0
	}
	if r < numGlobals {
		return f.globals[r]
	}
	return f.buf[f.index(f.cwp, r)]
}

// Set writes visible register r in the current window. Writes to r0 are
// discarded, preserving the hardwired zero.
func (f *File) Set(r uint8, v uint32) {
	if r >= visibleRegs {
		panic(fmt.Sprintf("regfile: register r%d out of range", r))
	}
	if r == 0 {
		return
	}
	if r < numGlobals {
		f.globals[r] = v
		return
	}
	f.buf[f.index(f.cwp, r)] = v
}

// Call advances the window for a CALL. If the advance overflows, it spills
// the oldest resident activation internally and returns its 16-register
// private span (HIGH block then locals) so the CPU's trap sequence can
// write it to the register-save stack in memory; otherwise it returns nil.
func (f *File) Call() (spilled []uint32) {
	f.Stats.Calls++
	f.depth++
	if f.depth > f.maxDepth {
		f.maxDepth = f.depth
	}
	f.cwp = (f.cwp + 1) % f.cfg.Windows
	if f.resident < f.cfg.MaxResident() {
		f.resident++
		return nil
	}
	// Overflow: evict the oldest activation's window span.
	f.Stats.Overflows++
	w := f.oldest
	spilled = make([]uint32, regsPerWindow)
	copy(spilled, f.buf[w*regsPerWindow:(w+1)*regsPerWindow])
	f.oldest = (f.oldest + 1) % f.cfg.Windows
	return spilled
}

// Return retreats the window for a RET. It reports whether the retreat
// underflowed — i.e. the parent activation had been spilled — in which
// case the CPU must read the parent's 16-register span from the save
// stack and pass it to Refill before the parent's registers are used.
func (f *File) Return() (underflow bool) {
	f.Stats.Returns++
	f.depth--
	f.cwp = mod(f.cwp-1, f.cfg.Windows)
	if f.resident > 1 {
		f.resident--
		return false
	}
	// Underflow: the new current window's contents are stale.
	f.Stats.Underflows++
	f.oldest = f.cwp
	return true
}

// Refill restores the current window's private span after an underflowing
// Return. It panics if vals has the wrong length (CPU bug, not input).
func (f *File) Refill(vals []uint32) {
	if len(vals) != regsPerWindow {
		panic(fmt.Sprintf("regfile: refill with %d values, want %d", len(vals), regsPerWindow))
	}
	w := f.cwp
	copy(f.buf[w*regsPerWindow:(w+1)*regsPerWindow], vals)
}

// Clone returns a deep copy of the register file — every physical
// register, the window pointers, and the statistics. Machine snapshots
// and forks use it; the clone shares nothing with the original.
func (f *File) Clone() *File {
	g := *f
	g.buf = append([]uint32(nil), f.buf...)
	return &g
}

// CopyFrom overwrites this file's state with src's, in place, so
// holders of the *File pointer observe the restored state. It panics if
// the geometries differ (a programming error, not runtime input).
func (f *File) CopyFrom(src *File) {
	if f.cfg != src.cfg {
		panic(fmt.Sprintf("regfile: copy between geometries %+v and %+v", src.cfg, f.cfg))
	}
	f.globals = src.globals
	copy(f.buf, src.buf)
	f.cwp = src.cwp
	f.oldest = src.oldest
	f.resident = src.resident
	f.depth = src.depth
	f.maxDepth = src.maxDepth
	f.Stats = src.Stats
}

// Reset restores the post-power-on state: all registers zero, CWP at
// window zero, one resident activation, statistics cleared.
func (f *File) Reset() {
	f.globals = [numGlobals]uint32{}
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.cwp = 0
	f.oldest = 0
	f.resident = 1
	f.depth = 0
	f.maxDepth = 0
	f.Stats = Stats{}
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
