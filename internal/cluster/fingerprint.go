package cluster

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// ProtocolVersion is the peer wire-contract version. Relays stamp it
// into the VersionHeader; a home replica that receives a relay with a
// missing or different version answers the stable peer_protocol error
// envelope instead of guessing at the sender's intent. Bump it when
// the relay semantics change incompatibly.
const ProtocolVersion = 1

// VersionHeader carries ProtocolVersion on every peer relay.
const VersionHeader = "X-Risc1-Peer-Version"

// Fingerprint is the capability summary replicas exchange at startup
// (and on every probe, via GET /v1/cluster): everything that must
// match for two replicas to be interchangeable cache homes. Cache keys
// are computed from the clamped request, so divergent caps would make
// the same request hash differently on different replicas — the
// fingerprint turns that silent corruption into a visible
// "incompatible" member state.
type Fingerprint struct {
	// Protocol is the peer wire-contract version (ProtocolVersion).
	Protocol int `json:"protocol"`
	// Machines is the sorted list of canonical backend names this
	// replica's registry serves.
	Machines []string `json:"machines"`
	// MaxFuel, MaxTimeoutMS, MaxSource are the request-clamping caps —
	// the cache-relevant server limits.
	MaxFuel      uint64 `json:"maxFuel"`
	MaxTimeoutMS int64  `json:"maxTimeoutMS"`
	MaxSource    int64  `json:"maxSource"`
}

// NewFingerprint assembles a replica's fingerprint. The machine list
// is copied and sorted so registration order does not leak into the
// comparison.
func NewFingerprint(machines []string, maxFuel uint64, maxTimeout time.Duration, maxSource int64) Fingerprint {
	ms := slices.Clone(machines)
	slices.Sort(ms)
	return Fingerprint{
		Protocol:     ProtocolVersion,
		Machines:     ms,
		MaxFuel:      maxFuel,
		MaxTimeoutMS: maxTimeout.Milliseconds(),
		MaxSource:    maxSource,
	}
}

// Compatible reports whether two replicas may serve as cache homes for
// each other: same protocol, same machine set, same clamping caps.
func (f Fingerprint) Compatible(o Fingerprint) bool {
	return f.Protocol == o.Protocol &&
		slices.Equal(f.Machines, o.Machines) &&
		f.MaxFuel == o.MaxFuel &&
		f.MaxTimeoutMS == o.MaxTimeoutMS &&
		f.MaxSource == o.MaxSource
}

// Diff describes the first incompatibility between two fingerprints,
// for the stable error a refused peer carries in the member table.
func (f Fingerprint) Diff(o Fingerprint) string {
	switch {
	case f.Protocol != o.Protocol:
		return fmt.Sprintf("protocol %d vs %d", f.Protocol, o.Protocol)
	case !slices.Equal(f.Machines, o.Machines):
		return fmt.Sprintf("machines [%s] vs [%s]",
			strings.Join(f.Machines, " "), strings.Join(o.Machines, " "))
	case f.MaxFuel != o.MaxFuel:
		return fmt.Sprintf("maxFuel %d vs %d", f.MaxFuel, o.MaxFuel)
	case f.MaxTimeoutMS != o.MaxTimeoutMS:
		return fmt.Sprintf("maxTimeoutMS %d vs %d", f.MaxTimeoutMS, o.MaxTimeoutMS)
	case f.MaxSource != o.MaxSource:
		return fmt.Sprintf("maxSource %d vs %d", f.MaxSource, o.MaxSource)
	}
	return "compatible"
}
