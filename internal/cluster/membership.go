package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"risc1/internal/obs"
	"risc1/internal/peer"
)

// Membership is one replica's live view of the replica set. Peers move
// between three states — up, down, incompatible — driven by two
// signals: periodic lightweight probes (GET /v1/cluster, which doubles
// as the capability handshake) and passive observation of relay
// failures. After FailAfter consecutive failures a peer is down; one
// successful probe brings it back up. A peer whose fingerprint does
// not match ours is incompatible — alive, but refused as a cache home
// — until a probe returns a matching fingerprint (e.g. after it
// restarts with fixed caps).
//
// The routing ring is recomputed over live members only, so routing
// never selects a peer this replica believes is dead: a down home
// means the key is re-homed across the survivors and served there. The
// generation counter increments on every membership transition; the
// serve layer watches it to invalidate replica-local peer caches whose
// placement assumptions just changed.
//
// All methods are safe for concurrent use.
type Membership struct {
	cfg    Config
	self   Fingerprint
	client *http.Client

	mu         sync.Mutex
	peers      map[string]*memberRec // every configured peer except self
	order      []string              // every configured URL in config order (self included)
	gen        uint64
	probes     uint64
	probeFails uint64

	ring atomic.Pointer[peer.Ring]

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// memberRec is one peer's mutable record; all fields guarded by
// Membership.mu.
type memberRec struct {
	state              State
	fails              int
	probes, probeFails uint64
	routed, relayErrs  uint64
	lastErr            string
	fp                 *Fingerprint
}

// NewMembership builds the membership table. Every peer starts
// optimistically up — the ring is full until observation says
// otherwise, so a cluster started in any order converges without a
// coordinator. client carries probes; nil means a dedicated default
// client.
func NewMembership(cfg Config, self Fingerprint, client *http.Client) *Membership {
	if client == nil {
		client = &http.Client{}
	}
	m := &Membership{
		cfg:    cfg,
		self:   self,
		client: client,
		peers:  make(map[string]*memberRec, len(cfg.Peers)),
		gen:    1,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, u := range cfg.Peers {
		m.order = append(m.order, u)
		if u != cfg.Self {
			m.peers[u] = &memberRec{state: StateUp}
		}
	}
	m.mu.Lock()
	m.rebuildLocked()
	m.mu.Unlock()
	return m
}

// Start launches the background prober: one sweep immediately (the
// startup handshake), then one every ProbeInterval.
func (m *Membership) Start() {
	if !m.started.CompareAndSwap(false, true) {
		return
	}
	go m.probeLoop()
}

// Stop ends the prober and waits for it to exit. Idempotent; a
// Membership that was never started stops trivially.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.started.Load() {
		<-m.done
	}
}

func (m *Membership) probeLoop() {
	defer close(m.done)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-m.stop
		cancel() // in-flight probes abort promptly on Stop
	}()
	t := time.NewTicker(m.cfg.ProbeInterval())
	defer t.Stop()
	m.ProbeAll(ctx)
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.ProbeAll(ctx)
		}
	}
}

// ProbeAll probes every peer once, concurrently, and returns when the
// sweep completes. Exposed so tests (and tools) can drive detection
// deterministically without waiting on the ticker.
func (m *Membership) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for url := range m.peers {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			m.probeOne(ctx, u)
		}(url)
	}
	wg.Wait()
}

// probeOne health-checks one peer: fetch its /v1/cluster document,
// compare fingerprints, record the outcome.
func (m *Membership) probeOne(ctx context.Context, url string) {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout())
	defer cancel()
	resp, err := Fetch(ctx, m.client, url)
	if err != nil {
		m.recordProbeFailure(url, err)
		return
	}
	if !m.self.Compatible(resp.Fingerprint) {
		m.recordIncompatible(url, "handshake: "+m.self.Diff(resp.Fingerprint), true, &resp.Fingerprint)
		return
	}
	m.recordProbeSuccess(url, resp.Fingerprint)
}

// ReportRelayFailure is the passive detector: the serve layer calls it
// when a relay to url fails, which counts toward the same
// consecutive-failure threshold probes feed.
func (m *Membership) ReportRelayFailure(url string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.peers[url]
	if !ok {
		return
	}
	rec.relayErrs++
	rec.lastErr = "relay: " + err.Error()
	m.failLocked(rec)
}

// ReportRelaySuccess resets a peer's consecutive-failure count. It
// does not resurrect a down peer — only a successful probe does, and
// relays are never sent to down peers in the first place.
func (m *Membership) ReportRelaySuccess(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.peers[url]; ok {
		rec.fails = 0
	}
}

// ReportIncompatible marks a peer refused at the wire level (e.g. a
// peer_protocol envelope answered to a relay), without waiting for the
// next probe to discover the same thing.
func (m *Membership) ReportIncompatible(url, reason string) {
	m.recordIncompatible(url, reason, false, nil)
}

// CountRoute records one synchronous run routed toward url — the
// per-peer counter GET /v1/cluster exposes.
func (m *Membership) CountRoute(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.peers[url]; ok {
		rec.routed++
	}
}

// Ring returns the current routing ring: self plus every up peer. The
// pointer is immutable; callers may hold it across a request.
func (m *Membership) Ring() *peer.Ring {
	return m.ring.Load()
}

// Generation returns the membership generation: 1 at start,
// incremented on every state transition. Equal generations at one
// replica mean the ring is unchanged between two observations.
func (m *Membership) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Snapshot renders the membership table as the /v1/cluster document.
func (m *Membership) Snapshot() Response {
	m.mu.Lock()
	defer m.mu.Unlock()
	resp := Response{
		Schema:      ResponseSchema,
		Self:        m.cfg.Self,
		Generation:  m.gen,
		Fingerprint: m.self,
	}
	for _, u := range m.order {
		if u == m.cfg.Self {
			resp.Members = append(resp.Members, Member{URL: u, State: StateSelf})
			continue
		}
		rec := m.peers[u]
		resp.Members = append(resp.Members, Member{
			URL:           u,
			State:         rec.state,
			Failures:      rec.fails,
			Probes:        rec.probes,
			ProbeFailures: rec.probeFails,
			Routed:        rec.routed,
			RelayErrors:   rec.relayErrs,
			LastError:     rec.lastErr,
			Fingerprint:   rec.fp,
		})
	}
	return resp
}

// Stats snapshots the membership gauges and counters for /metrics.
// The serve layer fills in the Fallbacks and CachePurges fields it
// owns.
func (m *Membership) Stats() obs.ClusterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := obs.ClusterStats{
		Members:       len(m.order),
		Up:            1, // self
		Generation:    m.gen,
		Probes:        m.probes,
		ProbeFailures: m.probeFails,
	}
	for _, rec := range m.peers {
		switch rec.state {
		case StateUp:
			cs.Up++
		case StateDown:
			cs.Down++
		case StateIncompatible:
			cs.Incompatible++
		}
	}
	return cs
}

// failLocked counts one failure and applies the down transition at the
// threshold. Called with m.mu held.
func (m *Membership) failLocked(rec *memberRec) {
	rec.fails++
	if rec.state == StateUp && rec.fails >= m.cfg.FailThreshold() {
		rec.state = StateDown
		m.gen++
		m.rebuildLocked()
	}
}

func (m *Membership) recordProbeFailure(url string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.peers[url]
	m.probes++
	m.probeFails++
	rec.probes++
	rec.probeFails++
	rec.lastErr = "probe: " + err.Error()
	m.failLocked(rec)
}

func (m *Membership) recordProbeSuccess(url string, fp Fingerprint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.peers[url]
	m.probes++
	rec.probes++
	rec.fails = 0
	rec.fp = &fp
	rec.lastErr = ""
	if rec.state != StateUp {
		rec.state = StateUp
		m.gen++
		m.rebuildLocked()
	}
}

func (m *Membership) recordIncompatible(url, reason string, isProbe bool, fp *Fingerprint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.peers[url]
	if !ok {
		return
	}
	if isProbe {
		m.probes++
		rec.probes++
	}
	rec.lastErr = reason
	if fp != nil {
		rec.fp = fp
	}
	if rec.state != StateIncompatible {
		rec.state = StateIncompatible
		m.gen++
		m.rebuildLocked()
	}
}

// rebuildLocked recomputes the routing ring over live members (self
// plus up peers), in config order. Called with m.mu held.
func (m *Membership) rebuildLocked() {
	live := make([]string, 0, len(m.order))
	for _, u := range m.order {
		if u == m.cfg.Self || m.peers[u].state == StateUp {
			live = append(live, u)
		}
	}
	m.ring.Store(peer.NewRing(live, peer.DefaultVirtualNodes))
}
