// Package cluster is risc1-serve's live replica-membership layer: a
// typed, versioned cluster configuration (risc1.cluster-config/v1), a
// capability fingerprint exchanged at startup so heterogeneous replicas
// are detected instead of silently mis-serving, and a health-checked
// membership table that recomputes the consistent-hash routing ring
// over live members only. PR 9's static -peers flag made a dead home
// replica a permanent 502; this package makes downness a observed,
// recoverable state — a down home means the edge serves locally, and a
// recovered peer rejoins the ring after one successful probe.
//
// The package is deliberately coordination-free, like the ring it
// feeds: every replica probes every other and forms its own view.
// Views converge because they observe the same processes, not because
// anyone agrees on them — which keeps the cluster contract as small
// and regular as the v1 run contract (the RISC argument applied to
// membership).
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// ConfigSchema names the typed cluster configuration document. The
// bare -peers/-self flags are the deprecated spelling of the same
// data; see docs/API.md for the migration path.
const ConfigSchema = "risc1.cluster-config/v1"

// Config is one replica's cluster configuration
// (risc1.cluster-config/v1): the full replica set, which entry is this
// replica, and the health/replication knobs. Loadable from a JSON file
// (risc1-serve -cluster file.json) or built from the deprecated
// -peers/-self flags via FromPeers.
type Config struct {
	// Schema names the document contract; empty means v1 on input and
	// is normalized to ConfigSchema.
	Schema string `json:"schema,omitempty"`
	// Self is this replica's entry in Peers (base URL).
	Self string `json:"self"`
	// Peers lists every replica's base URL, this one included.
	Peers []string `json:"peers"`
	// ProbeIntervalMS is how often each peer is health-probed;
	// <= 0 means 1000.
	ProbeIntervalMS int64 `json:"probeIntervalMS,omitempty"`
	// ProbeTimeoutMS bounds one probe; <= 0 means 2000.
	ProbeTimeoutMS int64 `json:"probeTimeoutMS,omitempty"`
	// FailAfter is how many consecutive failures (probe or relay) mark
	// a peer down; <= 0 means 3. One successful probe marks it up again.
	FailAfter int `json:"failAfter,omitempty"`
	// HotThreshold is the per-key request count past which a peer-homed
	// result is replicated locally; 0 means 8.
	HotThreshold uint64 `json:"hotThreshold,omitempty"`
	// PeerCacheBytes budgets the local store of hot peer responses;
	// 0 means 64 MiB.
	PeerCacheBytes int64 `json:"peerCacheBytes,omitempty"`
}

// ProbeInterval returns the effective probe cadence.
func (c Config) ProbeInterval() time.Duration {
	if c.ProbeIntervalMS <= 0 {
		return time.Second
	}
	return time.Duration(c.ProbeIntervalMS) * time.Millisecond
}

// ProbeTimeout returns the effective per-probe deadline.
func (c Config) ProbeTimeout() time.Duration {
	if c.ProbeTimeoutMS <= 0 {
		return 2 * time.Second
	}
	return time.Duration(c.ProbeTimeoutMS) * time.Millisecond
}

// FailThreshold returns the effective consecutive-failure count that
// marks a peer down.
func (c Config) FailThreshold() int {
	if c.FailAfter <= 0 {
		return 3
	}
	return c.FailAfter
}

// Parse decodes and validates a risc1.cluster-config/v1 document.
// Unknown fields are rejected — a typo'd knob must fail loudly, not
// silently select a default.
func Parse(b []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("cluster config: %w", err)
	}
	if c.Schema != "" && c.Schema != ConfigSchema {
		return Config{}, fmt.Errorf("cluster config: unknown schema %q; this build speaks %q", c.Schema, ConfigSchema)
	}
	return c.normalize()
}

// Load reads and parses a cluster config file.
func Load(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("cluster config: %w", err)
	}
	return Parse(b)
}

// FromPeers builds a Config from the deprecated -peers/-self flag pair:
// a comma-separated replica list and this replica's entry. The typed
// config file is the supported spelling going forward.
func FromPeers(peersCSV, self string) (Config, error) {
	var peers []string
	for _, p := range strings.Split(peersCSV, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return Config{Self: self, Peers: peers}.normalize()
}

// normalize cleans URLs (whitespace, trailing slashes), deduplicates
// the peer list preserving order, and validates the self/peers
// relationship.
func (c Config) normalize() (Config, error) {
	clean := func(u string) string {
		return strings.TrimRight(strings.TrimSpace(u), "/")
	}
	c.Schema = ConfigSchema
	c.Self = clean(c.Self)
	seen := make(map[string]bool, len(c.Peers))
	peers := make([]string, 0, len(c.Peers))
	for _, p := range c.Peers {
		if p = clean(p); p != "" && !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	c.Peers = peers
	if len(c.Peers) == 0 {
		return Config{}, fmt.Errorf("cluster config: peers is empty")
	}
	if c.Self == "" {
		return Config{}, fmt.Errorf("cluster config: self is required")
	}
	if !seen[c.Self] {
		return Config{}, fmt.Errorf("cluster config: self %q is not among peers %v", c.Self, c.Peers)
	}
	return c, nil
}
