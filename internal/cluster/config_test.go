package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	c, err := Parse([]byte(`{
		"schema": "risc1.cluster-config/v1",
		"self": "http://a:8081/",
		"peers": ["http://a:8081", " http://b:8082/ ", "http://a:8081"],
		"probeIntervalMS": 250,
		"failAfter": 2,
		"hotThreshold": 4
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Self != "http://a:8081" {
		t.Errorf("self = %q, want normalized http://a:8081", c.Self)
	}
	if len(c.Peers) != 2 || c.Peers[0] != "http://a:8081" || c.Peers[1] != "http://b:8082" {
		t.Errorf("peers = %v, want deduped, trimmed pair", c.Peers)
	}
	if got := c.ProbeInterval(); got != 250*time.Millisecond {
		t.Errorf("ProbeInterval = %v", got)
	}
	if got := c.FailThreshold(); got != 2 {
		t.Errorf("FailThreshold = %d", got)
	}
	if c.HotThreshold != 4 {
		t.Errorf("HotThreshold = %d", c.HotThreshold)
	}
}

func TestParseConfigDefaults(t *testing.T) {
	c, err := Parse([]byte(`{"self": "http://a:1", "peers": ["http://a:1", "http://b:2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Schema != ConfigSchema {
		t.Errorf("schema normalized to %q, want %q", c.Schema, ConfigSchema)
	}
	if c.ProbeInterval() != time.Second || c.ProbeTimeout() != 2*time.Second || c.FailThreshold() != 3 {
		t.Errorf("defaults: interval=%v timeout=%v failAfter=%d",
			c.ProbeInterval(), c.ProbeTimeout(), c.FailThreshold())
	}
}

func TestParseConfigRejections(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown schema", `{"schema": "risc1.cluster-config/v9", "self": "http://a:1", "peers": ["http://a:1"]}`, "unknown schema"},
		{"unknown field", `{"self": "http://a:1", "peers": ["http://a:1"], "probe_interval": 5}`, "probe_interval"},
		{"missing self", `{"peers": ["http://a:1"]}`, "self is required"},
		{"self not a peer", `{"self": "http://c:3", "peers": ["http://a:1", "http://b:2"]}`, "not among peers"},
		{"empty peers", `{"self": "http://a:1", "peers": []}`, "peers is empty"},
		{"malformed", `{"self": `, "cluster config"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(`{"self": "http://a:1", "peers": ["http://a:1", "http://b:2"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Self != "http://a:1" || len(c.Peers) != 2 {
		t.Errorf("loaded %+v", c)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file did not fail")
	}
}

func TestFromPeersLegacyFlags(t *testing.T) {
	c, err := FromPeers(" http://a:1/, http://b:2 ,", "http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Self != "http://a:1" || len(c.Peers) != 2 {
		t.Errorf("FromPeers = %+v", c)
	}
	if _, err := FromPeers("http://a:1,http://b:2", "http://c:3"); err == nil {
		t.Error("self outside the peer list did not fail")
	}
}

func TestFingerprintCompatibility(t *testing.T) {
	base := NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<26, 10*time.Second, 1<<20)
	if !base.Compatible(base) {
		t.Fatal("fingerprint incompatible with itself")
	}
	// Machine order must not matter (NewFingerprint sorts).
	reordered := NewFingerprint([]string{"rv32", "risc1", "cisc"}, 1<<26, 10*time.Second, 1<<20)
	if !base.Compatible(reordered) {
		t.Error("machine registration order leaked into the fingerprint")
	}
	for name, other := range map[string]Fingerprint{
		"protocol": func() Fingerprint { f := base; f.Protocol++; return f }(),
		"machines": NewFingerprint([]string{"risc1"}, 1<<26, 10*time.Second, 1<<20),
		"fuel":     NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<20, 10*time.Second, 1<<20),
		"timeout":  NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<26, 5*time.Second, 1<<20),
		"source":   NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<26, 10*time.Second, 1<<10),
	} {
		if base.Compatible(other) {
			t.Errorf("%s mismatch reported compatible", name)
		}
		if d := base.Diff(other); d == "compatible" || d == "" {
			t.Errorf("%s mismatch: Diff = %q", name, d)
		}
	}
}
