package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"
)

// fakePeer is a replica stand-in that serves /v1/cluster with a
// settable fingerprint, and can be flipped dead (503 to everything).
type fakePeer struct {
	ts *httptest.Server

	mu   sync.Mutex
	fp   Fingerprint
	dead bool
}

func newFakePeer(t *testing.T, fp Fingerprint) *fakePeer {
	t.Helper()
	p := &fakePeer{fp: fp}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		dead, fp := p.dead, p.fp
		p.mu.Unlock()
		if dead {
			http.Error(w, "down for the test", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(Response{Schema: ResponseSchema, Generation: 1, Fingerprint: fp})
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

func (p *fakePeer) setDead(dead bool) {
	p.mu.Lock()
	p.dead = dead
	p.mu.Unlock()
}

func (p *fakePeer) setFingerprint(fp Fingerprint) {
	p.mu.Lock()
	p.fp = fp
	p.mu.Unlock()
}

func testFingerprint() Fingerprint {
	return NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<26, 10*time.Second, 1<<20)
}

// newTestMembership builds a membership over the given fake peers with
// a self URL that is never dialed. The prober is NOT started; tests
// drive ProbeAll explicitly for determinism.
func newTestMembership(t *testing.T, failAfter int, peers ...*fakePeer) (*Membership, []string) {
	t.Helper()
	self := "http://self.invalid:1"
	urls := []string{self}
	for _, p := range peers {
		urls = append(urls, p.ts.URL)
	}
	cfg := Config{Self: self, Peers: urls, FailAfter: failAfter, ProbeTimeoutMS: 2000}
	cfg, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMembership(cfg, testFingerprint(), nil)
	t.Cleanup(m.Stop)
	return m, urls
}

func memberState(t *testing.T, m *Membership, url string) State {
	t.Helper()
	for _, mem := range m.Snapshot().Members {
		if mem.URL == url {
			return mem.State
		}
	}
	t.Fatalf("member %s not in snapshot", url)
	return ""
}

// TestProbeDetectsDownAndRecovery: a peer that stops answering probes
// goes down after FailAfter consecutive failures (not before), leaves
// the ring, and one successful probe brings it back.
func TestProbeDetectsDownAndRecovery(t *testing.T) {
	alive := newFakePeer(t, testFingerprint())
	flappy := newFakePeer(t, testFingerprint())
	m, urls := newTestMembership(t, 3, alive, flappy)
	self, flappyURL := urls[0], urls[2]

	ctx := context.Background()
	m.ProbeAll(ctx)
	if got := memberState(t, m, flappyURL); got != StateUp {
		t.Fatalf("after clean probe: state %q, want up", got)
	}
	gen0 := m.Generation()

	flappy.setDead(true)
	m.ProbeAll(ctx)
	m.ProbeAll(ctx)
	if got := memberState(t, m, flappyURL); got != StateUp {
		t.Fatalf("after 2 failures with failAfter=3: state %q, want still up", got)
	}
	m.ProbeAll(ctx)
	if got := memberState(t, m, flappyURL); got != StateDown {
		t.Fatalf("after 3 consecutive failures: state %q, want down", got)
	}
	if m.Generation() != gen0+1 {
		t.Errorf("generation %d, want %d after one transition", m.Generation(), gen0+1)
	}
	if nodes := m.Ring().Nodes(); slices.Contains(nodes, flappyURL) {
		t.Errorf("ring %v still contains the down peer", nodes)
	} else if !slices.Contains(nodes, self) || !slices.Contains(nodes, alive.ts.URL) {
		t.Errorf("ring %v lost a live member", nodes)
	}

	flappy.setDead(false)
	m.ProbeAll(ctx)
	if got := memberState(t, m, flappyURL); got != StateUp {
		t.Fatalf("after recovery probe: state %q, want up", got)
	}
	if m.Generation() != gen0+2 {
		t.Errorf("generation %d, want %d after down+up", m.Generation(), gen0+2)
	}
	if nodes := m.Ring().Nodes(); !slices.Contains(nodes, flappyURL) {
		t.Errorf("ring %v missing the recovered peer", nodes)
	}
}

// TestPassiveRelayFailureDetection: relay failures reported by the
// serve layer count toward the same threshold, and a relay success
// resets the streak.
func TestPassiveRelayFailureDetection(t *testing.T) {
	alive := newFakePeer(t, testFingerprint())
	m, urls := newTestMembership(t, 3, alive)
	target := urls[1]
	boom := errors.New("connection refused")

	m.ReportRelayFailure(target, boom)
	m.ReportRelayFailure(target, boom)
	m.ReportRelaySuccess(target) // streak broken
	m.ReportRelayFailure(target, boom)
	m.ReportRelayFailure(target, boom)
	if got := memberState(t, m, target); got != StateUp {
		t.Fatalf("interrupted streak marked peer %q", got)
	}
	m.ReportRelayFailure(target, boom)
	if got := memberState(t, m, target); got != StateDown {
		t.Fatalf("3 consecutive relay failures: state %q, want down", got)
	}
	// A relay success must not resurrect a down peer; only a probe does.
	m.ReportRelaySuccess(target)
	if got := memberState(t, m, target); got != StateDown {
		t.Fatalf("relay success resurrected a down peer (state %q)", got)
	}
	m.ProbeAll(context.Background())
	if got := memberState(t, m, target); got != StateUp {
		t.Fatalf("probe did not resurrect the peer (state %q)", got)
	}
}

// TestHandshakeRefusesIncompatiblePeer: a peer whose fingerprint
// differs (here: divergent caps) is marked incompatible, excluded from
// the ring, and readmitted once its fingerprint matches again.
func TestHandshakeRefusesIncompatiblePeer(t *testing.T) {
	wrong := NewFingerprint([]string{"risc1", "cisc", "rv32"}, 1<<10, 10*time.Second, 1<<20)
	p := newFakePeer(t, wrong)
	m, urls := newTestMembership(t, 3, p)
	target := urls[1]

	ctx := context.Background()
	m.ProbeAll(ctx)
	if got := memberState(t, m, target); got != StateIncompatible {
		t.Fatalf("state %q, want incompatible", got)
	}
	if nodes := m.Ring().Nodes(); slices.Contains(nodes, target) {
		t.Errorf("ring %v contains an incompatible peer", nodes)
	}
	var rec Member
	for _, mem := range m.Snapshot().Members {
		if mem.URL == target {
			rec = mem
		}
	}
	if rec.LastError == "" {
		t.Error("incompatible member carries no lastError explaining the refusal")
	}
	if rec.Fingerprint == nil || rec.Fingerprint.MaxFuel != 1<<10 {
		t.Errorf("member fingerprint = %+v, want the probed (mismatched) one", rec.Fingerprint)
	}

	// The peer restarts with matching caps: next probe readmits it.
	p.setFingerprint(testFingerprint())
	m.ProbeAll(ctx)
	if got := memberState(t, m, target); got != StateUp {
		t.Fatalf("after matching fingerprint: state %q, want up", got)
	}
}

// TestBackgroundProberConverges: Start's ticker-driven sweeps detect a
// death and a recovery without anyone calling ProbeAll.
func TestBackgroundProberConverges(t *testing.T) {
	p := newFakePeer(t, testFingerprint())
	self := "http://self.invalid:1"
	cfg, err := Config{
		Self: self, Peers: []string{self, p.ts.URL},
		ProbeIntervalMS: 10, FailAfter: 2, ProbeTimeoutMS: 1000,
	}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMembership(cfg, testFingerprint(), nil)
	m.Start()
	defer m.Stop()

	waitFor := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if memberState(t, m, p.ts.URL) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never became %q (state %q)", want, memberState(t, m, p.ts.URL))
	}

	waitFor(StateUp)
	p.setDead(true)
	waitFor(StateDown)
	p.setDead(false)
	waitFor(StateUp)
}

// TestStopIdempotent: Stop is safe to call twice, started or not.
func TestStopIdempotent(t *testing.T) {
	p := newFakePeer(t, testFingerprint())
	m, _ := newTestMembership(t, 3, p) // never started
	m.Stop()
	m.Stop()

	m2, _ := newTestMembership(t, 3, p)
	m2.Start()
	m2.Stop()
	m2.Stop()
}

// TestSnapshotShape: the /v1/cluster document carries the schema, the
// self row, per-peer counters, and the local fingerprint.
func TestSnapshotShape(t *testing.T) {
	p := newFakePeer(t, testFingerprint())
	m, urls := newTestMembership(t, 3, p)

	m.CountRoute(urls[1])
	m.CountRoute(urls[1])
	m.ReportRelayFailure(urls[1], errors.New("x"))

	snap := m.Snapshot()
	if snap.Schema != ResponseSchema {
		t.Errorf("schema %q", snap.Schema)
	}
	if snap.Self != urls[0] {
		t.Errorf("self %q, want %q", snap.Self, urls[0])
	}
	if !snap.Fingerprint.Compatible(testFingerprint()) {
		t.Error("snapshot fingerprint diverged from the local one")
	}
	if len(snap.Members) != 2 {
		t.Fatalf("members %d, want 2", len(snap.Members))
	}
	if snap.Members[0].State != StateSelf {
		t.Errorf("first member state %q, want self", snap.Members[0].State)
	}
	peerRow := snap.Members[1]
	if peerRow.Routed != 2 || peerRow.RelayErrors != 1 || peerRow.Failures != 1 {
		t.Errorf("peer counters routed=%d relayErrs=%d fails=%d, want 2/1/1",
			peerRow.Routed, peerRow.RelayErrors, peerRow.Failures)
	}

	stats := m.Stats()
	if stats.Members != 2 || stats.Up != 2 || stats.Down != 0 {
		t.Errorf("stats %+v", stats)
	}
}
