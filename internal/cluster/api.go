package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// ResponseSchema names the GET /v1/cluster document.
const ResponseSchema = "risc1.cluster-response/v1"

// State is a member's health from this replica's point of view.
type State string

const (
	// StateSelf marks the reporting replica's own row.
	StateSelf State = "self"
	// StateUp: in the routing ring; relays go to it.
	StateUp State = "up"
	// StateDown: past the consecutive-failure threshold; excluded from
	// the ring until a probe succeeds.
	StateDown State = "down"
	// StateIncompatible: alive but refused by the capability handshake;
	// excluded from the ring until a probe returns a matching
	// fingerprint.
	StateIncompatible State = "incompatible"
)

// Member is one row of a replica's membership table on the wire.
type Member struct {
	URL   string `json:"url"`
	State State  `json:"state"`
	// Failures is the current consecutive probe/relay failure count
	// (resets on success).
	Failures int `json:"failures,omitempty"`
	// Probes / ProbeFailures count health probes sent to this member.
	Probes        uint64 `json:"probes,omitempty"`
	ProbeFailures uint64 `json:"probeFailures,omitempty"`
	// Routed / RelayErrors count synchronous runs routed to this member
	// and the relays among them that failed.
	Routed      uint64 `json:"routed,omitempty"`
	RelayErrors uint64 `json:"relayErrors,omitempty"`
	// LastError is the most recent probe/relay failure or handshake
	// refusal, human-readable.
	LastError string `json:"lastError,omitempty"`
	// Fingerprint is the member's last successfully probed capability
	// summary, nil before the first handshake.
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
}

// Response is the body of GET /v1/cluster
// (risc1.cluster-response/v1): this replica's identity and
// fingerprint, its membership generation, and its view of every
// configured member. A standalone (unpeered) replica answers with an
// empty member list and generation 0 — the fingerprint is still
// present, which is all a handshake needs.
type Response struct {
	Schema      string      `json:"schema"`
	Self        string      `json:"self,omitempty"`
	Generation  uint64      `json:"generation"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Members     []Member    `json:"members,omitempty"`
}

// Fetch retrieves url's /v1/cluster document — the probe primitive,
// shared by the membership prober and risc1-loadgen's -cluster check.
func Fetch(ctx context.Context, client *http.Client, url string) (*Response, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(VersionHeader, strconv.Itoa(ProtocolVersion))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/v1/cluster: status %d", url, resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&r); err != nil {
		return nil, fmt.Errorf("GET %s/v1/cluster: %w", url, err)
	}
	if r.Schema != ResponseSchema {
		return nil, fmt.Errorf("GET %s/v1/cluster: schema %q, want %q", url, r.Schema, ResponseSchema)
	}
	return &r, nil
}
