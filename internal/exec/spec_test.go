package exec

import (
	"context"
	"errors"
	"testing"
	"time"
)

const specSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(12); return 0; }
`

func runSpec(t *testing.T, s Spec) Result {
	t.Helper()
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	results := p.RunBatch(context.Background(), []Job{s.Job("spec", 0)})
	return results[0]
}

func TestSpecRISC(t *testing.T) {
	res := runSpec(t, Spec{Name: "fib", Source: specSrc, Opt: 1, DelaySlots: true})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	out := res.Value.(Outcome)
	if out.Value != 144 {
		t.Errorf("fib(12) = %d, want 144", out.Value)
	}
	if out.Report.Workload != "fib" || out.Report.Machine == "" {
		t.Errorf("report not stamped: %+v", out.Report)
	}
	if out.Report.ICache != nil {
		t.Error("pool-produced report must clear the host icache section")
	}
	if !out.Report.Config.Optimized || out.Report.Config.OptLevel != 1 {
		t.Errorf("report config = %+v, want optimized at -O1", out.Report.Config)
	}
}

func TestSpecCISC(t *testing.T) {
	res := runSpec(t, Spec{Name: "fib", Machine: "cisc", Source: specSrc, Opt: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if out := res.Value.(Outcome); out.Value != 144 {
		t.Errorf("fib(12) = %d, want 144", out.Value)
	}
}

func TestSpecUnknownMachine(t *testing.T) {
	res := runSpec(t, Spec{Source: specSrc, Machine: "pdp11"})
	if res.Err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestSpecFuelExhausted(t *testing.T) {
	for _, m := range []string{"risc1", "cisc", "rv32"} {
		res := runSpec(t, Spec{Name: "starved", Machine: m, Source: specSrc, Fuel: 50})
		if res.Err == nil {
			t.Fatalf("%s: fuel-starved run succeeded", m)
		}
		if !IsFuelExhausted(res.Err) {
			t.Errorf("%s: error %v not recognized as fuel exhaustion", m, res.Err)
		}
	}
}

func TestSpecCompileError(t *testing.T) {
	res := runSpec(t, Spec{Source: "int main() { return undeclared; }"})
	var ce *CompileError
	if !errors.As(res.Err, &ce) {
		t.Fatalf("error = %v, want *CompileError", res.Err)
	}
	if IsFuelExhausted(res.Err) {
		t.Error("compile error misread as fuel exhaustion")
	}
}

func TestSpecDeadline(t *testing.T) {
	// An infinite guest loop must be stopped by the wall-clock timeout,
	// not run forever: this is the cooperative-cancellation path through
	// cpu.RunContext.
	src := `int result; int main() { while (1) { result = result + 1; } return 0; }`
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	s := Spec{Name: "spin", Source: src}
	results := p.RunBatch(context.Background(), []Job{s.Job("spin", 30*time.Millisecond)})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded", results[0].Err)
	}
}

// TestSimReuseNoLeakage runs a state-heavy program on a fresh Sims,
// then a different program, then the first again on the same Sims: the
// third run's report must equal the first's exactly. Any residue the
// second program left in memory, registers, window state or statistics
// would show up as a difference.
func TestSimReuseNoLeakage(t *testing.T) {
	first := Spec{Name: "fib", Source: specSrc, Opt: 1, DelaySlots: true, Fuel: 1 << 22}
	second := Spec{Name: "scribble", Opt: 1, DelaySlots: true, Source: `
int result;
int scratch;
int main() {
	int i;
	for (i = 0; i < 500; i = i + 1) { scratch = scratch + i * 7; }
	result = scratch;
	return 0;
}
`}
	sims := NewSims()
	ctx := context.Background()
	a, err := first.Run(ctx, sims)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Run(ctx, sims); err != nil {
		t.Fatal(err)
	}
	b, err := first.Run(ctx, sims)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("reused simulator changed the result: %d vs %d", a.Value, b.Value)
	}
	aj, err := a.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("reused simulator changed the report:\nfirst:\n%s\nthird:\n%s", aj, bj)
	}
}
