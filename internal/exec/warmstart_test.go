package exec

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// warmSrc exercises data as well as code: initialized globals (scalar
// and string) are populated by the prelude's segment load, so a warm
// restore has real data pages to share, and main overwrites the scratch
// array in place — a stale or shared-page-corruption bug would change
// the checksum of the next run.
const warmSrc = `
int result;
int bias = 7;
char tag[12] = "warm-start!";
int scratch[16];

int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }

int main() {
	int i;
	int acc;
	acc = bias;
	for (i = 0; i < 16; i = i + 1) {
		acc = acc * 3 + tag[i % 11] + i;
		scratch[i] = acc;
	}
	for (i = 0; i < 16; i = i + 1) {
		acc = acc + scratch[15 - i];
	}
	result = acc + fib(10);
	return 0;
}
`

// fanoutSrc reads the fan-out input global.
const fanoutSrc = `
int input;
int result;

int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }

int main() {
	result = fib(input) + input * 100;
	return 0;
}
`

// TestForkedVsColdDifferential is the acceptance differential for warm
// start: across every (machine, opt) corner on a Workers:8 pool, a
// run re-entered from the shared warm-start image must be byte-identical
// — value and full JSON report — to a cold run that performs the whole
// prelude. The warm runs go first and are repeated, so later warm runs
// restore an image whose pages earlier runs have already written through
// (the copy-on-write sharing is what is under test).
func TestForkedVsColdDifferential(t *testing.T) {
	p := NewPool(Config{Workers: 8})
	defer p.Close()

	for _, mach := range []string{"risc1", "cisc", "rv32"} {
		for _, opt := range []int{0, 1} {
			spec := Spec{
				Name:       "warm",
				Machine:    mach,
				Source:     warmSrc,
				Opt:        opt,
				DelaySlots: mach == "risc1",
				Fuel:       1 << 24,
			}
			runOnce := func(cold bool) (Outcome, []byte) {
				s := spec
				s.ColdStart = cold
				tk, err := p.Submit(context.Background(), s.Job("warm", time.Minute))
				if err != nil {
					t.Fatal(err)
				}
				res, err := tk.Result(context.Background())
				if err != nil || res.Err != nil {
					t.Fatalf("%s/O%d cold=%v: %v / %v", mach, opt, cold, err, res.Err)
				}
				out := res.Value.(Outcome)
				b, err := out.Report.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return out, b
			}

			warm1, warmJSON1 := runOnce(false)
			warm2, warmJSON2 := runOnce(false)
			cold, coldJSON := runOnce(true)

			if warm1.Value != cold.Value || warm2.Value != cold.Value {
				t.Errorf("%s/O%d: warm values %d,%d != cold %d", mach, opt, warm1.Value, warm2.Value, cold.Value)
			}
			if !bytes.Equal(warmJSON1, coldJSON) {
				t.Errorf("%s/O%d: first warm report diverged from cold:\n%s\n---\n%s", mach, opt, warmJSON1, coldJSON)
			}
			if !bytes.Equal(warmJSON2, coldJSON) {
				t.Errorf("%s/O%d: repeated warm report diverged from cold:\n%s\n---\n%s", mach, opt, warmJSON2, coldJSON)
			}
		}
	}
}

// TestForkedVsColdConcurrent hammers one warm-start image from eight
// workers at once while interleaving cold runs of the same program: all
// results must agree. Run under -race in CI, this is the page-sharing
// correctness test — concurrent restores and copy-on-write writes to
// the same shared image.
func TestForkedVsColdConcurrent(t *testing.T) {
	p := NewPool(Config{Workers: 8})
	defer p.Close()

	var jobs []Job
	for i := 0; i < 32; i++ {
		s := Spec{
			Name:       "warm",
			Source:     warmSrc,
			Opt:        1,
			DelaySlots: true,
			Fuel:       1 << 24,
			ColdStart:  i%4 == 0, // every fourth run pays the full prelude
		}
		jobs = append(jobs, s.Job(fmt.Sprintf("w%d", i), time.Minute))
	}
	results := p.RunBatch(context.Background(), jobs)
	var want []byte
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		rep := res.Value.(Outcome).Report
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("job %d report diverged from job 0:\n%s\n---\n%s", i, b, want)
		}
	}
}

// TestRunFanout checks the single-fork-point fan-out: one program, many
// inputs, each run restored from one shared image — and every member
// must be byte-identical to a cold run given the same input.
func TestRunFanout(t *testing.T) {
	p := NewPool(Config{Workers: 8})
	defer p.Close()

	inputs := make([]int32, 12)
	for i := range inputs {
		inputs[i] = int32(i)
	}
	fs := FanoutSpec{
		Spec: Spec{
			Name:       "fan",
			Source:     fanoutSrc,
			Opt:        1,
			DelaySlots: true,
			Fuel:       1 << 24,
		},
		Inputs: inputs,
	}
	forked := p.RunFanout(context.Background(), fs, time.Minute)
	cold := fs
	cold.Spec.ColdStart = true
	coldRes := p.RunFanout(context.Background(), cold, time.Minute)

	fib := func(n int32) int32 {
		a, b := int32(0), int32(1)
		for i := int32(0); i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	for i, res := range forked {
		if res.Err != nil {
			t.Fatalf("input %d: %v", i, res.Err)
		}
		out := res.Value.(Outcome)
		if want := fib(inputs[i]) + inputs[i]*100; out.Value != want {
			t.Errorf("input %d: value %d, want %d", i, out.Value, want)
		}
		if coldRes[i].Err != nil {
			t.Fatalf("cold input %d: %v", i, coldRes[i].Err)
		}
		fj, err := out.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		coldOut := coldRes[i].Value.(Outcome)
		cj, err := coldOut.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fj, cj) {
			t.Errorf("input %d: forked report diverged from cold:\n%s\n---\n%s", i, fj, cj)
		}
	}
	// The whole forked fan-out shares one image: one build, N-1 re-entries.
	if s := p.ImageCacheStats(); s.Misses != 1 {
		t.Errorf("image cache after fan-out: %+v, want exactly 1 miss (one shared image)", s)
	}

	// An input global the program does not declare is an error, not a
	// silent no-op.
	bad := FanoutSpec{Spec: fs.Spec, InputSym: "nosuch", Inputs: []int32{1}}
	res := p.RunFanout(context.Background(), bad, time.Minute)
	if len(res) != 1 || res[0].Err == nil {
		t.Errorf("fan-out with undefined input global: %+v, want error", res)
	}
}
