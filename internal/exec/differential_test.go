package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"risc1/internal/cc/progen"
)

// TestDifferentialThroughPool is the pool-level differential property:
// random well-typed MiniC programs from the shared corpus generator,
// each run through every (machine, opt) corner on a Workers:8 pool,
// must all compute the Go mirror's value. It re-checks the compiler's
// differential invariant under concurrency — simulator reuse across
// jobs, interleaved workloads on neighbouring workers — where a shared
// mutable table or leaked machine state would surface as a value
// mismatch on some seed.
func TestDifferentialThroughPool(t *testing.T) {
	programs := 24
	if testing.Short() {
		programs = 6
	}
	p := NewPool(Config{Workers: 8})
	defer p.Close()

	corners := []Spec{
		{Machine: "risc1", Opt: 0},
		{Machine: "risc1", Opt: 1, DelaySlots: true},
		{Machine: "cisc", Opt: 0},
		{Machine: "cisc", Opt: 1},
		{Machine: "rv32", Opt: 0},
		{Machine: "rv32", Opt: 1},
	}
	type caseInfo struct {
		seed int64
		src  string
		want int32
	}
	var jobs []Job
	var cases []caseInfo
	for i := 0; i < programs; i++ {
		seed := int64(1000 + i)
		r := rand.New(rand.NewSource(seed))
		src, want := progen.Program(r)
		for _, c := range corners {
			s := c
			s.Name = fmt.Sprintf("seed%d", seed)
			s.Source = src
			s.Fuel = 1 << 24
			jobs = append(jobs, s.Job(fmt.Sprintf("%s/%s/O%d", s.Name, s.Machine, s.Opt), 0))
			cases = append(cases, caseInfo{seed, src, want})
		}
	}
	results := p.RunBatch(context.Background(), jobs)
	for i, res := range results {
		c := cases[i]
		if res.Err != nil {
			t.Errorf("%s: %v\nsource:%s", jobs[i].Key, res.Err, c.src)
			continue
		}
		if got := res.Value.(Outcome).Value; got != c.want {
			t.Errorf("%s: got %d, want %d\nsource:%s", jobs[i].Key, got, c.want, c.src)
		}
	}
	if st := p.Stats(); st.Failed > 0 || st.Panics > 0 {
		t.Errorf("pool stats after differential batch: %+v", st)
	}
}
