package exec

import (
	"context"
	"errors"
	"time"

	"risc1/internal/obs"
	"risc1/internal/rcache"
)

// Cached fronts a Pool with a level-2 result cache: whole run results
// (value, report, attempt count — or a deterministic failure) keyed by
// Spec.CacheKey. Determinism makes this sound: the engine pins
// byte-identical reports for identical specs, so serving a cached
// result is indistinguishable from recomputing it, and the differential
// tests enforce the byte-identity. Concurrent identical specs are
// collapsed by the cache's singleflight, so a thundering herd of one
// program occupies one worker, not the whole pool.
//
// Results whose outcome depends on wall-clock scheduling — deadline
// expiry, cancellation, panics, transient infrastructure errors — are
// returned but never stored; only deterministic outcomes (success,
// compile errors, fuel exhaustion) are cacheable.
type Cached struct {
	pool  *Pool
	cache *rcache.Cache
}

// NewCached wraps pool with a result cache budgeted to the given number
// of bytes (<= 0 stores nothing but still collapses concurrent
// identical runs).
func NewCached(pool *Pool, budget int64) *Cached {
	return &Cached{pool: pool, cache: rcache.New(budget)}
}

// Pool returns the underlying engine (for stats and lifecycle).
func (c *Cached) Pool() *Pool { return c.pool }

// Stats snapshots the result cache.
func (c *Cached) Stats() obs.CacheStats { return c.cache.Stats() }

// CachedResult is one finished (or cached) run: the same information a
// pool Result carries for a Spec job, in a form that is stable to store
// and replay.
type CachedResult struct {
	// Outcome is the run's value and report; meaningful when Err is nil.
	Outcome Outcome
	// Attempts is the pool's attempt count for the run that produced
	// this result (1 unless transient retries happened). A cache hit
	// replays the original count, keeping reports byte-identical.
	Attempts int
	// Err is the run's deterministic failure (compile error, fuel
	// exhaustion, guest fault) or — on uncached paths only — a
	// scheduling failure (deadline, cancellation, panic).
	Err error
}

// Run executes spec through the cache: a hit returns the stored result
// without touching the pool; a miss submits one pool job and stores the
// result if it is deterministic; concurrent identical specs wait for
// the in-flight run. The returned rcache.Outcome says which of the
// three happened. The error return is reserved for infrastructure
// failures (pool closed, caller context done) — run failures travel in
// CachedResult.Err.
func (c *Cached) Run(ctx context.Context, spec Spec, timeout time.Duration) (CachedResult, rcache.Outcome, error) {
	key := spec.CacheKey(timeout)
	v, out, err := c.cache.Do(ctx, key, func() (any, int64, error) {
		tk, err := c.pool.Submit(ctx, spec.Job(spec.Name, timeout))
		if err != nil {
			return nil, 0, err
		}
		res, err := tk.Result(ctx)
		if err != nil {
			return nil, 0, err
		}
		cr := CachedResult{Attempts: res.Attempts, Err: res.Err}
		if res.Err == nil {
			cr.Outcome = res.Value.(Outcome)
		}
		return cr, cachedResultSize(cr), nil
	})
	if err != nil {
		return CachedResult{}, out, err
	}
	return v.(CachedResult), out, nil
}

// cachedResultSize sizes a result for the byte budget, or returns -1
// for results that must not be stored.
func cachedResultSize(cr CachedResult) int64 {
	if !cacheable(cr.Err) {
		return -1
	}
	if cr.Err != nil {
		return int64(len(cr.Err.Error())) + 256
	}
	// The report dominates the footprint; its deterministic JSON
	// rendering is an honest proxy for the in-memory size.
	n := int64(4096)
	if b, err := cr.Outcome.Report.JSON(); err == nil {
		n = int64(len(b)) + 256
	}
	return n
}

// cacheable reports whether a run error is deterministic — a property
// of the program, not of scheduling — and therefore safe to replay to
// future identical requests.
func cacheable(err error) bool {
	switch {
	case err == nil:
		return true
	case errors.As(err, new(*CompileError)):
		return true
	case IsFuelExhausted(err):
		return true
	default:
		// Deadlines, cancellations, panics, pool shutdown, transient
		// infrastructure errors: correct for this request only.
		return false
	}
}
