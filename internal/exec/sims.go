package exec

import (
	"context"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cpu"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/rcache"
	"risc1/internal/vax"
)

// Sims is one worker's simulator cache. Building a simulator allocates
// its whole memory image (1 MiB by default), so workers keep one
// machine per configuration and reuse it across jobs: Reset fully
// clears memory, registers, statistics and the predecoded icache, which
// is what makes reuse safe (pinned by the cross-job leakage tests).
//
// A Sims is confined to its worker goroutine and must not be shared.
// The exception is progs, the pool-wide compiled-program cache every
// worker's Sims points at: compiled programs are immutable after
// assembly (LoadInto and Symbol only read them), so sharing them across
// workers is safe, and a sweep that submits the same source many times
// compiles it once.
type Sims struct {
	risc   map[cpu.Config]*cpu.CPU
	vax    map[vax.Config]*vax.CPU
	progs  *rcache.Cache // shared, concurrency-safe; nil outside a pool
	images *rcache.Cache // shared warm-start images; nil outside a pool
}

// NewSims returns an empty cache.
func NewSims() *Sims {
	return &Sims{
		risc: make(map[cpu.Config]*cpu.CPU),
		vax:  make(map[vax.Config]*vax.CPU),
	}
}

// RISC returns the worker's RISC I machine for cfg, building it on
// first use. The instruction budget is not part of the cache key — it
// is re-applied on every call, so jobs with different fuel limits share
// a machine. The caller still owns Reset and program loading.
func (s *Sims) RISC(cfg cpu.Config) *cpu.CPU {
	key := cfg
	key.MaxInstructions = 0
	c, ok := s.risc[key]
	if !ok {
		c = cpu.New(key)
		s.risc[key] = c
	}
	c.SetMaxInstructions(cfg.MaxInstructions)
	return c
}

// VAX returns the worker's CISC baseline machine for cfg, with the same
// caching and fuel semantics as RISC.
func (s *Sims) VAX(cfg vax.Config) *vax.CPU {
	key := cfg
	key.MaxInstructions = 0
	c, ok := s.vax[key]
	if !ok {
		c = vax.New(key)
		s.vax[key] = c
	}
	c.SetMaxInstructions(cfg.MaxInstructions)
	return c
}

// compiledRISC is one level-1 cache entry: an immutable compiled
// program plus the report-ready compile artifacts, shared by every job
// that asks for the same (source, opt, delay-slot) combination.
type compiledRISC struct {
	prog   *asm.Program
	text   string
	passes []obs.PassStat
}

// compiledVAX is the CISC counterpart of compiledRISC.
type compiledVAX struct {
	prog   *vax.Program
	text   string
	passes []obs.PassStat
}

// CompileRISC compiles MiniC for RISC I through the pool's shared
// program cache: identical (source, options) pairs compile once
// pool-wide, with concurrent identical compiles collapsed to a single
// run. Outside a pool (nil receiver or no cache) it compiles directly.
// The returned program and pass list are shared and must be treated as
// read-only. Front-end failures return a *CompileError.
func (s *Sims) CompileRISC(ctx context.Context, source string, o cc.Options) (*asm.Program, string, []obs.PassStat, error) {
	if s == nil || s.progs == nil {
		prog, text, stats, err := cc.CompileRISC(source, o)
		if err != nil {
			return nil, "", nil, &CompileError{Err: err}
		}
		return prog, text, passStats(stats), nil
	}
	key := rcache.NewKey("risc1.compile/v1").
		Str("machine", string(MachineRISC)).
		Str("source", source).
		Int("opt", int64(o.Opt)).
		Bool("delaySlots", o.DelaySlots).
		Sum()
	v, _, err := s.progs.Do(ctx, key, func() (any, int64, error) {
		prog, text, stats, err := cc.CompileRISC(source, o)
		if err != nil {
			return nil, 0, &CompileError{Err: err}
		}
		cp := compiledRISC{prog: prog, text: text, passes: passStats(stats)}
		return cp, riscProgramSize(cp), nil
	})
	if err != nil {
		return nil, "", nil, err
	}
	cp := v.(compiledRISC)
	return cp.prog, cp.text, cp.passes, nil
}

// CompileVAX is CompileRISC for the CISC baseline.
func (s *Sims) CompileVAX(ctx context.Context, source string, o cc.Options) (*vax.Program, string, []obs.PassStat, error) {
	if s == nil || s.progs == nil {
		prog, text, stats, err := cc.CompileVAX(source, o)
		if err != nil {
			return nil, "", nil, &CompileError{Err: err}
		}
		return prog, text, passStats(stats), nil
	}
	key := rcache.NewKey("risc1.compile/v1").
		Str("machine", string(MachineCISC)).
		Str("source", source).
		Int("opt", int64(o.Opt)).
		Sum()
	v, _, err := s.progs.Do(ctx, key, func() (any, int64, error) {
		prog, text, stats, err := cc.CompileVAX(source, o)
		if err != nil {
			return nil, 0, &CompileError{Err: err}
		}
		cp := compiledVAX{prog: prog, text: text, passes: passStats(stats)}
		return cp, vaxProgramSize(cp), nil
	})
	if err != nil {
		return nil, "", nil, err
	}
	cp := v.(compiledVAX)
	return cp.prog, cp.text, cp.passes, nil
}

// riscImage is one warm-start cache entry: the compiled program plus a
// machine snapshot taken right after the prelude (Reset + LoadInto), so
// a request re-enters the initialized machine in O(touched pages)
// instead of re-zeroing memory and re-copying every segment. The
// snapshot is immutable and restore shares its pages copy-on-write, so
// one image serves any number of concurrent workers.
type riscImage struct {
	prog   *asm.Program
	text   string
	passes []obs.PassStat
	snap   *cpu.Snapshot
}

// vaxImage is the CISC counterpart of riscImage.
type vaxImage struct {
	prog   *vax.Program
	text   string
	passes []obs.PassStat
	snap   *vax.Snapshot
}

// RISCImage compiles source and builds (or fetches) its warm-start
// image for the given machine configuration: a snapshot of the machine
// right after Reset + program load. Identical (source, options,
// machine-config) tuples share one image pool-wide; concurrent identical
// requests collapse to a single build. Outside a pool (nil receiver or
// no shared cache) it builds a fresh image, which still gives forked
// fan-out within one call.
func (s *Sims) RISCImage(ctx context.Context, source string, o cc.Options, cfg cpu.Config) (riscImage, error) {
	cfg.MaxInstructions = 0 // fuel is per-run, not part of the image
	cfg.NoICache = false    // host-side switch, not architectural state
	build := func() (riscImage, int64, error) {
		prog, text, passes, err := s.CompileRISC(ctx, source, o)
		if err != nil {
			return riscImage{}, 0, err
		}
		scratch := cpu.New(cfg)
		scratch.Reset(prog.Entry)
		if err := prog.LoadInto(scratch.Mem); err != nil {
			return riscImage{}, 0, err
		}
		img := riscImage{prog: prog, text: text, passes: passes, snap: scratch.Snapshot()}
		size := int64(img.snap.MemPages())*mem.PageSize + riscProgramSize(compiledRISC{prog: prog, text: text, passes: passes})
		return img, size, nil
	}
	if s == nil || s.images == nil {
		img, _, err := build()
		return img, err
	}
	key := rcache.NewKey("risc1.image/v1").
		Str("machine", string(MachineRISC)).
		Str("source", source).
		Int("opt", int64(o.Opt)).
		Bool("delaySlots", o.DelaySlots).
		Int("windows", int64(cfg.Windows)).
		Bool("noWindows", cfg.NoWindows).
		Int("memSize", int64(cfg.MemSize)).
		Uint("saveStackTop", uint64(cfg.SaveStackTop)).
		Sum()
	v, _, err := s.images.Do(ctx, key, func() (any, int64, error) {
		img, size, err := build()
		if err != nil {
			return nil, 0, err
		}
		return img, size, nil
	})
	if err != nil {
		return riscImage{}, err
	}
	return v.(riscImage), nil
}

// VAXImage is RISCImage for the CISC baseline.
func (s *Sims) VAXImage(ctx context.Context, source string, o cc.Options, cfg vax.Config) (vaxImage, error) {
	cfg.MaxInstructions = 0
	build := func() (vaxImage, int64, error) {
		prog, text, passes, err := s.CompileVAX(ctx, source, o)
		if err != nil {
			return vaxImage{}, 0, err
		}
		scratch := vax.New(cfg)
		scratch.Reset(prog.Entry)
		if err := prog.LoadInto(scratch.Mem); err != nil {
			return vaxImage{}, 0, err
		}
		img := vaxImage{prog: prog, text: text, passes: passes, snap: scratch.Snapshot()}
		size := int64(img.snap.MemPages())*mem.PageSize + vaxProgramSize(compiledVAX{prog: prog, text: text, passes: passes})
		return img, size, nil
	}
	if s == nil || s.images == nil {
		img, _, err := build()
		return img, err
	}
	key := rcache.NewKey("risc1.image/v1").
		Str("machine", string(MachineCISC)).
		Str("source", source).
		Int("opt", int64(o.Opt)).
		Int("memSize", int64(cfg.MemSize)).
		Uint("stackTop", uint64(cfg.StackTop)).
		Sum()
	v, _, err := s.images.Do(ctx, key, func() (any, int64, error) {
		img, size, err := build()
		if err != nil {
			return nil, 0, err
		}
		return img, size, nil
	})
	if err != nil {
		return vaxImage{}, err
	}
	return v.(vaxImage), nil
}

// NewRISCMachine compiles source (through the shared caches when
// attached) and returns a fresh, paused RISC I machine positioned at the
// program entry, plus the compiled program for symbol lookup. The
// machine is restored from the pool-wide warm-start image, so building a
// long-lived debug session costs O(touched pages) after the first
// request for a given program. The caller owns the machine outright —
// it is not a pooled worker simulator — and may step it, attach
// observers, and hold it for as long as the session lives.
func (s *Sims) NewRISCMachine(ctx context.Context, source string, o cc.Options, cfg cpu.Config) (*cpu.CPU, *asm.Program, error) {
	img, err := s.RISCImage(ctx, source, o, cfg)
	if err != nil {
		return nil, nil, err
	}
	c := cpu.New(cfg)
	c.Restore(img.snap)
	return c, img.prog, nil
}

// NewVAXMachine is NewRISCMachine for the CISC baseline.
func (s *Sims) NewVAXMachine(ctx context.Context, source string, o cc.Options, cfg vax.Config) (*vax.CPU, *vax.Program, error) {
	img, err := s.VAXImage(ctx, source, o, cfg)
	if err != nil {
		return nil, nil, err
	}
	c := vax.New(cfg)
	c.Restore(img.snap)
	return c, img.prog, nil
}

// riscProgramSize approximates a compiled program's memory footprint
// for the cache's byte budget: segment bytes, the assembly listing, and
// a fixed allowance for symbols and headers.
func riscProgramSize(cp compiledRISC) int64 {
	n := int64(len(cp.text)) + 512
	for _, seg := range cp.prog.Segments {
		n += int64(len(seg.Data))
	}
	n += int64(len(cp.prog.Symbols)) * 32
	return n
}

func vaxProgramSize(cp compiledVAX) int64 {
	n := int64(len(cp.text)) + 512
	for _, seg := range cp.prog.Segments {
		n += int64(len(seg.Data))
	}
	n += int64(len(cp.prog.Symbols)) * 32
	return n
}
