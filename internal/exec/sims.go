package exec

import (
	"context"

	"risc1/internal/machine"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/rcache"
)

// simKey identifies one worker machine: the backend plus its normalized
// build options. Fuel is not part of the key — it is re-applied on
// every checkout, so jobs with different budgets share a machine.
type simKey struct {
	backend string
	opts    machine.Options
}

// Sims is one worker's simulator cache. Building a simulator allocates
// its whole memory image (1 MiB by default), so workers keep one
// machine per (backend, configuration) and reuse it across jobs: Reset
// and Restore fully replace memory, registers and statistics, which is
// what makes reuse safe (pinned by the cross-job leakage tests).
//
// A Sims is confined to its worker goroutine and must not be shared.
// The exception is progs and images, the pool-wide caches every
// worker's Sims points at: compiled programs and warm-start snapshots
// are immutable, so sharing them across workers is safe, and a sweep
// that submits the same source many times compiles it once.
type Sims struct {
	machines map[simKey]machine.Machine
	progs    *rcache.Cache // shared, concurrency-safe; nil outside a pool
	images   *rcache.Cache // shared warm-start images; nil outside a pool
}

// NewSims returns an empty cache.
func NewSims() *Sims {
	return &Sims{machines: make(map[simKey]machine.Machine)}
}

// Machine returns the worker's simulator for the backend and options,
// building it on first use. The instruction budget is re-applied on
// every call rather than keyed, and options the backend ignores are
// normalized away, so equivalent requests share one machine. The caller
// still owns Reset (or Restore) and program loading.
func (s *Sims) Machine(b *machine.Backend, o machine.Options) machine.Machine {
	key := simKey{backend: b.Name, opts: b.Normalize(o)}
	key.opts.Fuel = 0
	m, ok := s.machines[key]
	if !ok {
		m = b.New(key.opts)
		s.machines[key] = m
	}
	m.SetMaxInstructions(o.Fuel)
	return m
}

// compiled is one level-1 cache entry: an immutable compiled program
// plus the report-ready compile artifacts, shared by every job that
// asks for the same (backend, source, options) combination.
type compiled struct {
	prog   machine.Program
	text   string
	passes []obs.PassStat
}

func (cp compiled) size() int64 {
	return cp.prog.Footprint() + int64(len(cp.text))
}

// Compile compiles MiniC for a backend through the pool's shared
// program cache: identical (backend, source, options) tuples compile
// once pool-wide, with concurrent identical compiles collapsed to a
// single run. Outside a pool (nil receiver or no cache) it compiles
// directly. The returned program and pass list are shared and must be
// treated as read-only. Front-end failures return a *CompileError.
func (s *Sims) Compile(ctx context.Context, b *machine.Backend, source string, o machine.Options) (machine.Program, string, []obs.PassStat, error) {
	o = b.Normalize(o)
	if s == nil || s.progs == nil {
		prog, text, passes, err := b.Compile(source, o)
		if err != nil {
			return nil, "", nil, &CompileError{Err: err}
		}
		return prog, text, passes, nil
	}
	key := rcache.NewKey("risc1.compile/v2").
		Str("machine", b.Name).
		Str("source", source).
		Int("opt", int64(o.Opt)).
		Bool("delaySlots", o.DelaySlots).
		Sum()
	v, _, err := s.progs.Do(ctx, key, func() (any, int64, error) {
		prog, text, passes, err := b.Compile(source, o)
		if err != nil {
			return nil, 0, &CompileError{Err: err}
		}
		cp := compiled{prog: prog, text: text, passes: passes}
		return cp, cp.size(), nil
	})
	if err != nil {
		return nil, "", nil, err
	}
	cp := v.(compiled)
	return cp.prog, cp.text, cp.passes, nil
}

// Image is one warm-start cache entry: the compiled program plus a
// machine snapshot taken right after the prelude (Reset + LoadInto), so
// a request re-enters the initialized machine in O(touched pages)
// instead of re-zeroing memory and re-copying every segment. The
// snapshot is immutable and restore shares its pages copy-on-write, so
// one image serves any number of concurrent workers.
type Image struct {
	Prog   machine.Program
	Text   string
	Passes []obs.PassStat
	Snap   machine.Snapshot
}

// imageOptions normalizes options down to what identifies a warm-start
// image: fuel is per-run and the predecoded icache is host machinery,
// so neither reaches the snapshot.
func imageOptions(b *machine.Backend, o machine.Options) machine.Options {
	o = b.Normalize(o)
	o.Fuel = 0
	o.NoICache = false
	return o
}

// ImageFor compiles source and builds (or fetches) its warm-start image
// for the given backend and options. Identical (backend, source,
// options) tuples share one image pool-wide; concurrent identical
// requests collapse to a single build. Outside a pool (nil receiver or
// no shared cache) it builds a fresh image, which still gives forked
// fan-out within one call.
func (s *Sims) ImageFor(ctx context.Context, b *machine.Backend, source string, o machine.Options) (Image, error) {
	io := imageOptions(b, o)
	build := func() (Image, int64, error) {
		prog, text, passes, err := s.Compile(ctx, b, source, io)
		if err != nil {
			return Image{}, 0, err
		}
		scratch := b.New(io)
		scratch.Reset(prog.Entry())
		if err := prog.LoadInto(scratch.Mem()); err != nil {
			return Image{}, 0, err
		}
		img := Image{Prog: prog, Text: text, Passes: passes, Snap: scratch.Snapshot()}
		size := int64(img.Snap.MemPages())*mem.PageSize + compiled{prog: prog, text: text}.size()
		return img, size, nil
	}
	if s == nil || s.images == nil {
		img, _, err := build()
		return img, err
	}
	key := rcache.NewKey("risc1.image/v2").
		Str("machine", b.Name).
		Str("source", source).
		Int("opt", int64(io.Opt)).
		Bool("delaySlots", io.DelaySlots).
		Int("windows", int64(io.Windows)).
		Bool("noWindows", io.NoWindows).
		Int("memSize", int64(io.MemSize)).
		Sum()
	v, _, err := s.images.Do(ctx, key, func() (any, int64, error) {
		img, size, err := build()
		if err != nil {
			return nil, 0, err
		}
		return img, size, nil
	})
	if err != nil {
		return Image{}, err
	}
	return v.(Image), nil
}

// NewMachine compiles source (through the shared caches when attached)
// and returns a fresh, paused machine positioned at the program entry,
// plus the compiled program for symbol lookup. The machine is restored
// from the pool-wide warm-start image, so building a long-lived debug
// session costs O(touched pages) after the first request for a given
// program. The caller owns the machine outright — it is not a pooled
// worker simulator — and may step it, attach observers, and hold it for
// as long as the session lives.
func (s *Sims) NewMachine(ctx context.Context, b *machine.Backend, source string, o machine.Options) (machine.Machine, machine.Program, error) {
	img, err := s.ImageFor(ctx, b, source, o)
	if err != nil {
		return nil, nil, err
	}
	m := b.New(b.Normalize(o))
	m.Restore(img.Snap)
	return m, img.Prog, nil
}
