package exec

import (
	"risc1/internal/cpu"
	"risc1/internal/vax"
)

// Sims is one worker's simulator cache. Building a simulator allocates
// its whole memory image (1 MiB by default), so workers keep one
// machine per configuration and reuse it across jobs: Reset fully
// clears memory, registers, statistics and the predecoded icache, which
// is what makes reuse safe (pinned by the cross-job leakage tests).
//
// A Sims is confined to its worker goroutine and must not be shared.
type Sims struct {
	risc map[cpu.Config]*cpu.CPU
	vax  map[vax.Config]*vax.CPU
}

// NewSims returns an empty cache.
func NewSims() *Sims {
	return &Sims{
		risc: make(map[cpu.Config]*cpu.CPU),
		vax:  make(map[vax.Config]*vax.CPU),
	}
}

// RISC returns the worker's RISC I machine for cfg, building it on
// first use. The instruction budget is not part of the cache key — it
// is re-applied on every call, so jobs with different fuel limits share
// a machine. The caller still owns Reset and program loading.
func (s *Sims) RISC(cfg cpu.Config) *cpu.CPU {
	key := cfg
	key.MaxInstructions = 0
	c, ok := s.risc[key]
	if !ok {
		c = cpu.New(key)
		s.risc[key] = c
	}
	c.SetMaxInstructions(cfg.MaxInstructions)
	return c
}

// VAX returns the worker's CISC baseline machine for cfg, with the same
// caching and fuel semantics as RISC.
func (s *Sims) VAX(cfg vax.Config) *vax.CPU {
	key := cfg
	key.MaxInstructions = 0
	c, ok := s.vax[key]
	if !ok {
		c = vax.New(key)
		s.vax[key] = c
	}
	c.SetMaxInstructions(cfg.MaxInstructions)
	return c
}
