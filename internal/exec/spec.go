package exec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cc/opt"
	"risc1/internal/cpu"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/rcache"
	"risc1/internal/vax"
)

// Machine names a simulator target.
type Machine string

const (
	MachineRISC Machine = "risc1"
	MachineCISC Machine = "cisc"
)

// Spec is a declarative compile+simulate job: MiniC source, a target
// machine, a compiler level, and resource bounds. It is the job model
// risc1-serve queues on the pool; the bench harness submits richer
// closures directly.
type Spec struct {
	// Name is the workload name stamped into the run report.
	Name string
	// Machine picks the simulator; empty means RISC I.
	Machine Machine
	// Source is the MiniC program. It must store its result in the
	// global named by ResultSym.
	Source string
	// Opt is the compiler optimization level (0 or 1).
	Opt int
	// DelaySlots enables the RISC assembler's delayed-jump optimizer.
	DelaySlots bool
	// Windows / NoWindows configure the RISC register file (zero means
	// the paper's 8 windows).
	Windows   int
	NoWindows bool
	// Fuel is the instruction budget; 0 means the simulator default
	// (2^32). Exhausting it fails the job with a wrapped
	// ErrInstructionLimit — check with IsFuelExhausted.
	Fuel uint64
	// ResultSym is the global read back after the run; default "result".
	ResultSym string
	// ColdStart bypasses the warm-start image cache and re-runs the full
	// prelude (Reset + program load) for this run. Results are
	// byte-identical either way — the forked-vs-cold differential tests
	// enforce it — so this exists for those tests and for benchmarking
	// the warm-start speedup, not for callers.
	ColdStart bool
}

// Outcome is a completed spec: the guest-visible result word and the
// versioned run report. The report's ICache section is cleared — worker
// simulators are reused across jobs, so host-cache counters depend on
// pool history while every simulated number is job-deterministic.
type Outcome struct {
	Value  int32
	Report obs.Report
}

// CompileError marks a front-end failure (parse, type check, codegen or
// assembly) so callers can tell a bad program from a failed run.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return e.Err.Error() }
func (e *CompileError) Unwrap() error { return e.Err }

// IsFuelExhausted reports whether err is an instruction-budget
// exhaustion on either machine.
func IsFuelExhausted(err error) bool {
	return errors.Is(err, cpu.ErrInstructionLimit) || errors.Is(err, vax.ErrInstructionLimit)
}

// Job wraps the spec as a pool job.
func (s Spec) Job(key string, timeout time.Duration) Job {
	return Job{Key: key, Timeout: timeout, Fn: func(ctx context.Context, sims *Sims) (any, error) {
		return s.Run(ctx, sims)
	}}
}

// Run compiles and executes the spec on the worker's cached simulators.
// The default path is warm-start: the compiled+initialized machine image
// (post Reset + load) is checked into the pool-wide cache once, and each
// run re-enters it by restoring the snapshot — O(touched pages) instead
// of re-zeroing memory and re-copying segments. Set ColdStart to force
// the full prelude; the results are byte-identical.
func (s Spec) Run(ctx context.Context, sims *Sims) (Outcome, error) {
	return s.run(ctx, sims, nil)
}

// input is an optional fan-out input poked into a named global after the
// prelude and before execution (see RunFanout).
type input struct {
	sym string
	val int32
}

func (s Spec) run(ctx context.Context, sims *Sims, in *input) (Outcome, error) {
	sym := s.ResultSym
	if sym == "" {
		sym = "result"
	}
	switch s.Machine {
	case MachineCISC:
		return s.runVAX(ctx, sims, sym, in)
	case MachineRISC, "":
		return s.runRISC(ctx, sims, sym, in)
	default:
		return Outcome{}, fmt.Errorf("exec: unknown machine %q", s.Machine)
	}
}

// pokeInput writes a fan-out input into its global before the run. It
// uses WriteBytes so the poke does not count as guest memory traffic —
// the input is initial state, not a simulated store — and the OnStore
// hook it fires keeps the predecoded icache coherent even if a program
// places the global inside a code page.
func pokeInput(m *mem.Memory, prog interface {
	Symbol(string) (uint32, bool)
}, in *input) error {
	if in == nil {
		return nil
	}
	addr, ok := prog.Symbol(in.sym)
	if !ok {
		return fmt.Errorf("exec: no input global named %q", in.sym)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(in.val))
	return m.WriteBytes(addr, b[:])
}

func (s Spec) runRISC(ctx context.Context, sims *Sims, sym string, in *input) (Outcome, error) {
	cfg := cpu.Config{Windows: s.Windows, NoWindows: s.NoWindows, MaxInstructions: s.Fuel}
	var prog *asm.Program
	var passes []obs.PassStat
	c := sims.RISC(cfg)
	if s.ColdStart {
		var err error
		prog, _, passes, err = sims.CompileRISC(ctx, s.Source, cc.Options{Opt: s.Opt, DelaySlots: s.DelaySlots})
		if err != nil {
			return Outcome{}, err
		}
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			return Outcome{}, err
		}
	} else {
		img, err := sims.RISCImage(ctx, s.Source, cc.Options{Opt: s.Opt, DelaySlots: s.DelaySlots}, cfg)
		if err != nil {
			return Outcome{}, err
		}
		prog, passes = img.prog, img.passes
		c.Restore(img.snap)
	}
	if err := pokeInput(c.Mem, prog, in); err != nil {
		return Outcome{}, err
	}
	if err := c.RunContext(ctx); err != nil {
		return Outcome{}, err
	}
	addr, ok := prog.Symbol(sym)
	if !ok {
		return Outcome{}, fmt.Errorf("exec: no global named %q", sym)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		return Outcome{}, err
	}
	rep := c.BuildReport(s.Name)
	rep.ICache = nil // host machinery accumulated across the worker's jobs
	rep.Config.Optimized = s.DelaySlots
	rep.Config.OptLevel = s.Opt
	rep.Config.Passes = passes
	return Outcome{Value: int32(v), Report: rep}, nil
}

func (s Spec) runVAX(ctx context.Context, sims *Sims, sym string, in *input) (Outcome, error) {
	cfg := vax.Config{MaxInstructions: s.Fuel}
	var prog *vax.Program
	var passes []obs.PassStat
	c := sims.VAX(cfg)
	if s.ColdStart {
		var err error
		prog, _, passes, err = sims.CompileVAX(ctx, s.Source, cc.Options{Opt: s.Opt})
		if err != nil {
			return Outcome{}, err
		}
		c.Reset(prog.Entry)
		if err := prog.LoadInto(c.Mem); err != nil {
			return Outcome{}, err
		}
	} else {
		img, err := sims.VAXImage(ctx, s.Source, cc.Options{Opt: s.Opt}, cfg)
		if err != nil {
			return Outcome{}, err
		}
		prog, passes = img.prog, img.passes
		c.Restore(img.snap)
	}
	if err := pokeInput(c.Mem, prog, in); err != nil {
		return Outcome{}, err
	}
	if err := c.RunContext(ctx); err != nil {
		return Outcome{}, err
	}
	addr, ok := prog.Symbol(sym)
	if !ok {
		return Outcome{}, fmt.Errorf("exec: no global named %q", sym)
	}
	v, err := c.Mem.LoadWord(addr)
	if err != nil {
		return Outcome{}, err
	}
	rep := c.BuildReport(s.Name)
	rep.Config.OptLevel = s.Opt
	rep.Config.Passes = passes
	return Outcome{Value: int32(v), Report: rep}, nil
}

// CacheKey is the spec's content address for level-2 result caching:
// every field that reaches the run report or the result word is folded
// into the hash, plus the wall-clock budget (two requests differing
// only in deadline may legitimately differ in outcome). Defaults are
// normalized first so a spec asking for "risc1" explicitly and one
// leaving Machine empty address the same entry.
func (s Spec) CacheKey(timeout time.Duration) rcache.Key {
	machine := s.Machine
	if machine == "" {
		machine = MachineRISC
	}
	sym := s.ResultSym
	if sym == "" {
		sym = "result"
	}
	return rcache.NewKey("risc1.run/v1").
		Str("name", s.Name).
		Str("machine", string(machine)).
		Str("source", s.Source).
		Int("opt", int64(s.Opt)).
		Bool("delaySlots", s.DelaySlots).
		Int("windows", int64(s.Windows)).
		Bool("noWindows", s.NoWindows).
		Uint("fuel", s.Fuel).
		Str("resultSym", sym).
		Int("timeoutNS", int64(timeout)).
		Sum()
}

// passStats mirrors compiler pass statistics into the report's own type,
// dropping passes that did nothing (same rule as the bench harness).
func passStats(stats []opt.Stat) []obs.PassStat {
	var out []obs.PassStat
	for _, s := range stats {
		if s.Rewrites > 0 {
			out = append(out, obs.PassStat{Name: s.Name, Rewrites: s.Rewrites})
		}
	}
	return out
}
