package exec

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"risc1/internal/machine"
	"risc1/internal/mem"
	"risc1/internal/obs"
	"risc1/internal/rcache"
)

// Spec is a declarative compile+simulate job: MiniC source, a target
// machine, a compiler level, and resource bounds. It is the job model
// risc1-serve queues on the pool; the bench harness submits richer
// closures directly.
type Spec struct {
	// Name is the workload name stamped into the run report.
	Name string
	// Machine names the simulator in the machine registry (canonical
	// name or alias); empty means the default, RISC I. Validate names
	// upfront with machine.Canonical.
	Machine string
	// Source is the MiniC program. It must store its result in the
	// global named by ResultSym.
	Source string
	// Opt is the compiler optimization level (0 or 1).
	Opt int
	// DelaySlots enables the RISC assembler's delayed-jump optimizer.
	DelaySlots bool
	// Windows / NoWindows configure the RISC register file (zero means
	// the paper's 8 windows).
	Windows   int
	NoWindows bool
	// Fuel is the instruction budget; 0 means the simulator default
	// (2^32). Exhausting it fails the job with the backend's wrapped
	// fuel sentinel — check with IsFuelExhausted.
	Fuel uint64
	// ResultSym is the global read back after the run; default "result".
	ResultSym string
	// ColdStart bypasses the warm-start image cache and re-runs the full
	// prelude (Reset + program load) for this run. Results are
	// byte-identical either way — the forked-vs-cold differential tests
	// enforce it — so this exists for those tests and for benchmarking
	// the warm-start speedup, not for callers.
	ColdStart bool
}

// Outcome is a completed spec: the guest-visible result word and the
// versioned run report. Host-machinery report sections (the RISC
// predecoded-icache counters) are scrubbed — worker simulators are
// reused across jobs, so those counters depend on pool history while
// every simulated number is job-deterministic.
type Outcome struct {
	Value  int32
	Report obs.Report
}

// CompileError marks a front-end failure (parse, type check, codegen or
// assembly) so callers can tell a bad program from a failed run.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return e.Err.Error() }
func (e *CompileError) Unwrap() error { return e.Err }

// IsFuelExhausted reports whether err is an instruction-budget
// exhaustion on any registered machine.
func IsFuelExhausted(err error) bool {
	return machine.IsFuelExhausted(err)
}

// Job wraps the spec as a pool job.
func (s Spec) Job(key string, timeout time.Duration) Job {
	return Job{Key: key, Timeout: timeout, Fn: func(ctx context.Context, sims *Sims) (any, error) {
		return s.Run(ctx, sims)
	}}
}

// Options maps the spec's machine-facing knobs to registry options.
func (s Spec) Options() machine.Options {
	return machine.Options{
		Opt:        s.Opt,
		DelaySlots: s.DelaySlots,
		Windows:    s.Windows,
		NoWindows:  s.NoWindows,
		Fuel:       s.Fuel,
	}
}

// Run compiles and executes the spec on the worker's cached simulators.
// The default path is warm-start: the compiled+initialized machine image
// (post Reset + load) is checked into the pool-wide cache once, and each
// run re-enters it by restoring the snapshot — O(touched pages) instead
// of re-zeroing memory and re-copying segments. Set ColdStart to force
// the full prelude; the results are byte-identical.
func (s Spec) Run(ctx context.Context, sims *Sims) (Outcome, error) {
	return s.run(ctx, sims, nil)
}

// input is an optional fan-out input poked into a named global after the
// prelude and before execution (see RunFanout).
type input struct {
	sym string
	val int32
}

func (s Spec) run(ctx context.Context, sims *Sims, in *input) (Outcome, error) {
	sym := s.ResultSym
	if sym == "" {
		sym = "result"
	}
	b, ok := machine.Lookup(s.Machine)
	if !ok {
		_, err := machine.Canonical(s.Machine)
		return Outcome{}, fmt.Errorf("exec: %w", err)
	}
	o := b.Normalize(s.Options())
	m := sims.Machine(b, o)
	var prog machine.Program
	var passes []obs.PassStat
	if s.ColdStart {
		var err error
		prog, _, passes, err = sims.Compile(ctx, b, s.Source, o)
		if err != nil {
			return Outcome{}, err
		}
		m.Reset(prog.Entry())
		if err := prog.LoadInto(m.Mem()); err != nil {
			return Outcome{}, err
		}
	} else {
		img, err := sims.ImageFor(ctx, b, s.Source, o)
		if err != nil {
			return Outcome{}, err
		}
		prog, passes = img.Prog, img.Passes
		m.Restore(img.Snap)
	}
	if err := pokeInput(m.Mem(), prog, in); err != nil {
		return Outcome{}, err
	}
	if err := m.RunContext(ctx); err != nil {
		return Outcome{}, err
	}
	addr, ok := prog.Symbol(sym)
	if !ok {
		return Outcome{}, fmt.Errorf("exec: no global named %q", sym)
	}
	v, err := m.Mem().LoadWord(addr)
	if err != nil {
		return Outcome{}, err
	}
	rep := m.BuildReport(s.Name)
	b.ScrubReport(&rep) // host machinery accumulated across the worker's jobs
	rep.Config.Optimized = o.DelaySlots
	rep.Config.OptLevel = o.Opt
	rep.Config.Passes = passes
	return Outcome{Value: int32(v), Report: rep}, nil
}

// pokeInput writes a fan-out input into its global before the run. It
// uses WriteBytes so the poke does not count as guest memory traffic —
// the input is initial state, not a simulated store — and the OnStore
// hook it fires keeps the predecoded icache coherent even if a program
// places the global inside a code page.
func pokeInput(m *mem.Memory, prog interface {
	Symbol(string) (uint32, bool)
}, in *input) error {
	if in == nil {
		return nil
	}
	addr, ok := prog.Symbol(in.sym)
	if !ok {
		return fmt.Errorf("exec: no input global named %q", in.sym)
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(in.val))
	return m.WriteBytes(addr, b[:])
}

// CacheKey is the spec's content address for level-2 result caching:
// every field that reaches the run report or the result word is folded
// into the hash, plus the wall-clock budget (two requests differing
// only in deadline may legitimately differ in outcome). The machine
// name is canonicalized and the options normalized first, so a spec
// asking for an alias or carrying knobs its machine ignores addresses
// the same entry as the canonical spelling.
func (s Spec) CacheKey(timeout time.Duration) rcache.Key {
	name := s.Machine
	o := s.Options()
	if b, ok := machine.Lookup(s.Machine); ok {
		name = b.Name
		o = b.Normalize(o)
	}
	sym := s.ResultSym
	if sym == "" {
		sym = "result"
	}
	return rcache.NewKey("risc1.run/v2").
		Str("name", s.Name).
		Str("machine", name).
		Str("source", s.Source).
		Int("opt", int64(o.Opt)).
		Bool("delaySlots", o.DelaySlots).
		Int("windows", int64(o.Windows)).
		Bool("noWindows", o.NoWindows).
		Uint("fuel", o.Fuel).
		Str("resultSym", sym).
		Int("timeoutNS", int64(timeout)).
		Sum()
}
