package exec

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"risc1/internal/rcache"
)

const cachedSrc = `
int result;
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { result = fib(12); return 0; }
`

// TestCachedDifferential is the acceptance differential: for every
// (machine, opt) corner, a cache hit must be byte-identical — value,
// attempt count, and the full JSON report — to a cold recompute on a
// fresh pool that has never seen the program.
func TestCachedDifferential(t *testing.T) {
	for _, mach := range []string{"risc1", "cisc", "rv32"} {
		for _, opt := range []int{0, 1} {
			spec := Spec{
				Name:       "diff",
				Machine:    mach,
				Source:     cachedSrc,
				Opt:        opt,
				DelaySlots: mach == "risc1",
				Fuel:       1 << 24,
			}

			// Cold recompute: a fresh pool with the program cache disabled,
			// run directly (no result cache anywhere near it).
			coldPool := NewPool(Config{Workers: 1, ProgramCacheBytes: -1})
			coldTk, err := coldPool.Submit(context.Background(), spec.Job("cold", time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			coldRes, err := coldTk.Result(context.Background())
			coldPool.Close()
			if err != nil || coldRes.Err != nil {
				t.Fatalf("%s/-O%d cold: %v / %v", mach, opt, err, coldRes.Err)
			}
			cold := coldRes.Value.(Outcome)

			// Cached path: miss once, then hit.
			pool := NewPool(Config{Workers: 2})
			cached := NewCached(pool, 1<<20)
			first, out1, err := cached.Run(context.Background(), spec, time.Minute)
			if err != nil || first.Err != nil {
				t.Fatalf("%s/-O%d miss: %v / %v", mach, opt, err, first.Err)
			}
			if out1 != rcache.Miss {
				t.Errorf("%s/-O%d first run outcome = %v, want miss", mach, opt, out1)
			}
			hit, out2, err := cached.Run(context.Background(), spec, time.Minute)
			pool.Close()
			if err != nil || hit.Err != nil {
				t.Fatalf("%s/-O%d hit: %v / %v", mach, opt, err, hit.Err)
			}
			if out2 != rcache.Hit {
				t.Errorf("%s/-O%d second run outcome = %v, want hit", mach, opt, out2)
			}

			if hit.Outcome.Value != cold.Value || hit.Attempts != coldRes.Attempts {
				t.Errorf("%s/-O%d: hit (value %d, attempts %d) != cold (value %d, attempts %d)",
					mach, opt, hit.Outcome.Value, hit.Attempts, cold.Value, coldRes.Attempts)
			}
			hitJSON, err := hit.Outcome.Report.JSON()
			if err != nil {
				t.Fatal(err)
			}
			coldJSON, err := cold.Report.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(hitJSON, coldJSON) {
				t.Errorf("%s/-O%d: cache-hit report diverged from cold recompute:\n%s\n---\n%s",
					mach, opt, hitJSON, coldJSON)
			}
		}
	}
}

// TestCachedSingleflight: N concurrent identical runs reach the engine
// exactly once, everyone gets the same result, and the cache counters
// reconcile (hits + misses + coalesced == N).
func TestCachedSingleflight(t *testing.T) {
	const n = 16
	pool := NewPool(Config{Workers: 4})
	defer pool.Close()
	cached := NewCached(pool, 1<<20)
	spec := Spec{Name: "herd", Source: cachedSrc, DelaySlots: true, Fuel: 1 << 24}

	var wg sync.WaitGroup
	results := make([]CachedResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cr, _, err := cached.Run(context.Background(), spec, time.Minute)
			if err != nil {
				t.Error(err)
			}
			results[i] = cr
		}(i)
	}
	wg.Wait()

	for i, cr := range results {
		if cr.Err != nil {
			t.Fatalf("run %d failed: %v", i, cr.Err)
		}
		if cr.Outcome.Value != results[0].Outcome.Value {
			t.Errorf("run %d value %d != run 0 value %d", i, cr.Outcome.Value, results[0].Outcome.Value)
		}
	}
	if got := pool.Stats().Submitted; got != 1 {
		t.Errorf("pool saw %d submissions, want 1 (herd must collapse)", got)
	}
	s := cached.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Misses+s.Coalesced != n {
		t.Errorf("cache counters %+v do not reconcile to %d requests", s, n)
	}
}

// TestCachedCompileErrorCached: a compile error is a property of the
// program, so the second identical request is a hit that replays it
// without reaching the engine again.
func TestCachedCompileErrorCached(t *testing.T) {
	pool := NewPool(Config{Workers: 1})
	defer pool.Close()
	cached := NewCached(pool, 1<<20)
	spec := Spec{Name: "bad", Source: "int main() { return undeclared; }"}

	first, out, err := cached.Run(context.Background(), spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out != rcache.Miss || !errors.As(first.Err, new(*CompileError)) {
		t.Fatalf("first: outcome %v err %v, want miss with CompileError", out, first.Err)
	}
	second, out, err := cached.Run(context.Background(), spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out != rcache.Hit || !errors.As(second.Err, new(*CompileError)) {
		t.Fatalf("second: outcome %v err %v, want hit with CompileError", out, second.Err)
	}
	if first.Err.Error() != second.Err.Error() {
		t.Errorf("replayed error %q != original %q", second.Err, first.Err)
	}
	if got := pool.Stats().Submitted; got != 1 {
		t.Errorf("pool saw %d submissions, want 1", got)
	}
}

// TestCachedDeadlineNotCached: deadline expiry depends on wall-clock
// scheduling, so it must be recomputed every time — both requests miss.
func TestCachedDeadlineNotCached(t *testing.T) {
	pool := NewPool(Config{Workers: 1})
	defer pool.Close()
	cached := NewCached(pool, 1<<20)
	spec := Spec{
		Name:   "spin",
		Source: `int result; int main() { while (1) { result = result + 1; } return 0; }`,
	}

	for i := 0; i < 2; i++ {
		cr, out, err := cached.Run(context.Background(), spec, 30*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if out != rcache.Miss {
			t.Errorf("request %d outcome = %v, want miss (deadlines are uncacheable)", i, out)
		}
		if !errors.Is(cr.Err, context.DeadlineExceeded) {
			t.Errorf("request %d err = %v, want deadline", i, cr.Err)
		}
	}
	if s := cached.Stats(); s.Entries != 0 {
		t.Errorf("cache stored %d entries, want 0", s.Entries)
	}
}

// TestProgramCacheSharedAcrossJobs: two specs differing only in fields
// that don't affect compilation (fuel) share one compiled program, and
// the reports still match a compile-cache-disabled pool byte for byte.
func TestProgramCacheSharedAcrossJobs(t *testing.T) {
	run := func(cacheBytes int64) ([]byte, *Pool) {
		pool := NewPool(Config{Workers: 1, ProgramCacheBytes: cacheBytes})
		spec := Spec{Name: "prog", Source: cachedSrc, DelaySlots: true, Fuel: 1 << 24}
		var last []byte
		for _, fuel := range []uint64{1 << 24, 1 << 25} {
			spec.Fuel = fuel
			tk, err := pool.Submit(context.Background(), spec.Job("p", time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			res, err := tk.Result(context.Background())
			if err != nil || res.Err != nil {
				t.Fatalf("run: %v / %v", err, res.Err)
			}
			rep := res.Value.(Outcome).Report
			b, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			last = b
		}
		return last, pool
	}

	withCache, pool := run(1 << 20)
	s := pool.ProgramCacheStats()
	img := pool.ImageCacheStats()
	pool.Close()
	// Warm start moves the second run onto the image cache: the source
	// compiles exactly once (inside the image build), and the run with
	// different fuel re-enters the same image — fuel is neither a
	// compile key nor an image key.
	if s.Misses != 1 || s.Hits != 0 {
		t.Errorf("program cache stats = %+v, want exactly 1 compile (fuel is not a compile key)", s)
	}
	if img.Misses != 1 || img.Hits != 1 {
		t.Errorf("image cache stats = %+v, want 1 miss + 1 hit (fuel is not an image key)", img)
	}

	without, pool2 := run(-1)
	if s := pool2.ProgramCacheStats(); s.Misses != 0 || s.Entries != 0 {
		t.Errorf("disabled program cache reports activity: %+v", s)
	}
	pool2.Close()
	if !bytes.Equal(withCache, without) {
		t.Errorf("report with program cache diverged from without:\n%s\n---\n%s", withCache, without)
	}
}
