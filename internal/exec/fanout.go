package exec

import (
	"context"
	"fmt"
	"time"
)

// FanoutSpec runs one program against many inputs from a single fork
// point: the program is compiled and its machine image initialized once
// (the warm-start image), and every input re-enters that image by
// restoring the snapshot — memory pages shared copy-on-write across the
// whole fan-out — with the input word poked into a named global before
// execution.
type FanoutSpec struct {
	// Spec is the base program. Its ColdStart field applies to every
	// member run (the differential tests use it to prove forked and cold
	// fan-outs are byte-identical).
	Spec
	// InputSym is the global each input is written to before the run;
	// default "input". The program reads it like any other global.
	InputSym string
	// Inputs are the values to fan out over, one run per element.
	Inputs []int32
}

// RunFanout executes the fan-out on the pool and returns one Result per
// input, ordered by input index — NOT by completion order — so reports
// assembled from a fan-out are byte-identical at any worker count. Each
// member is an ordinary pool job: it gets the per-job fuel and timeout
// bounds, panic isolation, and cancellation like any submitted work.
func (p *Pool) RunFanout(ctx context.Context, fs FanoutSpec, timeout time.Duration) []Result {
	sym := fs.InputSym
	if sym == "" {
		sym = "input"
	}
	name := fs.Name
	if name == "" {
		name = "fanout"
	}
	jobs := make([]Job, len(fs.Inputs))
	for i, v := range fs.Inputs {
		in := &input{sym: sym, val: v}
		jobs[i] = Job{
			Key:     fmt.Sprintf("%s[%d]", name, i),
			Timeout: timeout,
			Fn: func(ctx context.Context, sims *Sims) (any, error) {
				return fs.Spec.run(ctx, sims, in)
			},
		}
	}
	return p.RunBatch(ctx, jobs)
}
