// Package exec is the concurrent batch-execution engine: a bounded
// worker pool that runs compile+simulate jobs — either ISA, either
// optimization level — on per-worker simulator instances. The paper's
// core experiment (the same C workloads on RISC I and a CISC reference)
// is an embarrassingly parallel sweep; the pool turns it from a serial
// loop into a pipeline while keeping results deterministic: batch
// results are ordered by submission index, never by completion order,
// so a report assembled from them is byte-identical at any worker count.
//
// The pool's contract (DESIGN.md §10):
//
//   - Per-job fuel limits (instruction budgets) and wall-clock timeouts
//     via context.Context.
//   - Panic isolation: a crashing guest (or job function) fails its own
//     job with a *PanicError; the worker and the pool survive.
//   - Bounded retry: errors wrapped with Transient are re-run up to
//     Config.Retries times; everything else fails fast.
//   - Graceful drain: Close stops intake and waits for queued and
//     running jobs; Shutdown additionally cancels them.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"risc1/internal/obs"
	"risc1/internal/rcache"
)

// ErrClosed is returned by Submit after Close or Shutdown.
var ErrClosed = errors.New("exec: pool closed")

// Job is one unit of work. Fn runs on a worker goroutine with that
// worker's simulator cache; it must not retain sims past its return.
type Job struct {
	// Key identifies the job in its Result; batch callers use it to
	// label failures. It does not need to be unique.
	Key string
	// Timeout bounds the job's wall-clock run, all attempts included.
	// Zero uses the pool default; negative disables the limit.
	Timeout time.Duration
	// Fn does the work. Returning an error wrapped with Transient asks
	// for a retry.
	Fn func(ctx context.Context, sims *Sims) (any, error)
}

// Result is a finished job.
type Result struct {
	Key      string
	Value    any
	Err      error
	Attempts int // 1 unless transient retries happened
}

// Config sizes the pool.
type Config struct {
	// Workers is the number of worker goroutines, each owning its own
	// simulator cache; <=0 means GOMAXPROCS.
	Workers int
	// Queue is how many accepted jobs may wait beyond the ones running;
	// <=0 means twice Workers. Submit blocks when the queue is full.
	Queue int
	// Retries is the maximum number of re-runs after a transient
	// failure (so a job runs at most Retries+1 times).
	Retries int
	// DefaultTimeout bounds jobs that do not set their own; zero means
	// no limit.
	DefaultTimeout time.Duration
	// ProgramCacheBytes budgets the pool-wide compiled-program cache
	// (level 1 of internal/rcache): identical sources compile once
	// pool-wide instead of once per job. Zero means a 64 MiB default;
	// negative disables the cache.
	ProgramCacheBytes int64
	// ImageCacheBytes budgets the pool-wide warm-start image cache:
	// compiled+initialized machine snapshots that runs re-enter in
	// O(touched pages) instead of repeating the Reset+load prelude.
	// Zero means a 256 MiB default; negative disables the cache (each
	// run then builds a private image — still correct, just cold).
	ImageCacheBytes int64
}

// Pool is the engine. Create with NewPool; all methods are safe for
// concurrent use.
type Pool struct {
	cfg    Config
	jobs   chan *task
	progs  *rcache.Cache // shared compiled-program cache; nil when disabled
	images *rcache.Cache // shared warm-start image cache; nil when disabled

	// baseCtx is cancelled by Shutdown, aborting running jobs and
	// unblocking full-queue submitters.
	baseCtx context.Context
	abort   context.CancelFunc

	workerWG sync.WaitGroup // worker goroutines
	taskWG   sync.WaitGroup // accepted, unfinished tasks

	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once

	queued    atomic.Int64
	running   atomic.Int64
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	retries   atomic.Uint64
	panics    atomic.Uint64
	rejected  atomic.Uint64
}

type task struct {
	job  Job
	ctx  context.Context // the submitter's context
	done chan struct{}
	res  Result
}

// NewPool starts the workers and returns the running pool.
func NewPool(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.ProgramCacheBytes == 0 {
		cfg.ProgramCacheBytes = 64 << 20
	}
	if cfg.ImageCacheBytes == 0 {
		cfg.ImageCacheBytes = 256 << 20
	}
	p := &Pool{cfg: cfg, jobs: make(chan *task, cfg.Queue)}
	if cfg.ProgramCacheBytes > 0 {
		p.progs = rcache.New(cfg.ProgramCacheBytes)
	}
	if cfg.ImageCacheBytes > 0 {
		p.images = rcache.New(cfg.ImageCacheBytes)
	}
	p.baseCtx, p.abort = context.WithCancel(context.Background())
	p.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// ProgramCacheStats snapshots the compiled-program cache; zero when the
// cache is disabled.
func (p *Pool) ProgramCacheStats() obs.CacheStats {
	if p.progs == nil {
		return obs.CacheStats{}
	}
	return p.progs.Stats()
}

// ImageCacheStats snapshots the warm-start image cache; zero when the
// cache is disabled.
func (p *Pool) ImageCacheStats() obs.CacheStats {
	if p.images == nil {
		return obs.CacheStats{}
	}
	return p.images.Stats()
}

// ImageSims returns a Sims wired to the pool's shared compiled-program
// and warm-start image caches but owning no per-worker machines. It
// exists for callers that build machines outside the worker pool (the
// session subsystem): the Compile* and New*Machine methods only touch
// the concurrency-safe shared caches plus fresh local state, so the
// returned Sims may be used from any number of goroutines for those —
// the per-config machine accessors (RISC/VAX) stay goroutine-confined.
func (p *Pool) ImageSims() *Sims {
	s := NewSims()
	s.progs = p.progs
	s.images = p.images
	return s
}

// Stats snapshots the pool's gauges and counters.
func (p *Pool) Stats() obs.PoolStats {
	return obs.PoolStats{
		Workers:   p.cfg.Workers,
		QueueCap:  p.cfg.Queue,
		Queued:    p.queued.Load(),
		Running:   p.running.Load(),
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Retries:   p.retries.Load(),
		Panics:    p.panics.Load(),
		Rejected:  p.rejected.Load(),
	}
}

// Ticket is a handle on a submitted job.
type Ticket struct{ t *task }

// Done is closed when the job finishes (any outcome).
func (tk *Ticket) Done() <-chan struct{} { return tk.t.done }

// Result blocks until the job finishes or ctx is done. The returned
// error is only ever ctx's: job failures live in Result.Err.
func (tk *Ticket) Result(ctx context.Context) (Result, error) {
	select {
	case <-tk.t.done:
		return tk.t.res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Submit queues a job, blocking while the queue is full. The job's run
// is bounded by ctx (a caller that hangs up cancels its job), the job's
// timeout, and the pool's lifetime.
func (p *Pool) Submit(ctx context.Context, job Job) (*Ticket, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejected.Add(1)
		return nil, ErrClosed
	}
	t := &task{job: job, ctx: ctx, done: make(chan struct{})}
	// Count the task before releasing the lock so Close's drain wait
	// always covers it, even while we block on a full queue below.
	p.taskWG.Add(1)
	p.submitted.Add(1)
	p.queued.Add(1)
	p.mu.Unlock()

	select {
	case p.jobs <- t:
		return &Ticket{t: t}, nil
	default:
	}
	select {
	case p.jobs <- t:
		return &Ticket{t: t}, nil
	case <-ctx.Done():
		p.dropPending(t)
		return nil, ctx.Err()
	case <-p.baseCtx.Done():
		p.dropPending(t)
		return nil, ErrClosed
	}
}

// dropPending unwinds the accounting of a task that never made it into
// the queue.
func (p *Pool) dropPending(t *task) {
	p.queued.Add(-1)
	p.submitted.Add(^uint64(0)) // never accepted: not a submission
	p.rejected.Add(1)
	p.taskWG.Done()
	close(t.done)
}

// RunBatch submits every job and waits for them all. Results are
// ordered by the jobs' indices — NOT by completion order — which is
// what makes reports assembled from a batch byte-identical regardless
// of the pool's worker count. A job that could not be submitted or
// awaited carries the submission error in its Result slot.
func (p *Pool) RunBatch(ctx context.Context, jobs []Job) []Result {
	tickets := make([]*Ticket, len(jobs))
	results := make([]Result, len(jobs))
	for i, j := range jobs {
		tk, err := p.Submit(ctx, j)
		if err != nil {
			results[i] = Result{Key: j.Key, Err: err}
			continue
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		if tk == nil {
			continue
		}
		res, err := tk.Result(ctx)
		if err != nil {
			res = Result{Key: jobs[i].Key, Err: err}
		}
		results[i] = res
	}
	return results
}

// Close stops intake and drains: it blocks until every accepted job has
// finished, then stops the workers. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.taskWG.Wait()
	p.closeOnce.Do(func() { close(p.jobs) })
	p.workerWG.Wait()
}

// Shutdown stops intake and cancels queued and running jobs, then waits
// for the workers to wind down, giving up when ctx does. Jobs observe
// the cancellation through their contexts and fail with ctx errors.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.abort()
	done := make(chan struct{})
	go func() {
		p.taskWG.Wait()
		p.closeOnce.Do(func() { close(p.jobs) })
		p.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) worker() {
	defer p.workerWG.Done()
	sims := NewSims()
	sims.progs = p.progs
	sims.images = p.images
	for t := range p.jobs {
		p.runTask(sims, t)
	}
}

// runTask drives one task to completion, retrying transient failures.
func (p *Pool) runTask(sims *Sims, t *task) {
	p.queued.Add(-1)
	p.running.Add(1)
	defer p.running.Add(-1)
	defer p.taskWG.Done()
	defer close(t.done)

	// The job context merges the submitter's context, the pool's
	// lifetime, and the job's wall-clock budget (all attempts share it).
	jctx, cancel := context.WithCancel(t.ctx)
	defer cancel()
	stop := context.AfterFunc(p.baseCtx, cancel)
	defer stop()
	// AfterFunc runs in its own goroutine; cancel synchronously when the
	// pool is already shut down so a queued job never starts afterwards.
	if p.baseCtx.Err() != nil {
		cancel()
	}
	timeout := t.job.Timeout
	if timeout == 0 {
		timeout = p.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeout(jctx, timeout)
		defer tcancel()
	}

	res := Result{Key: t.job.Key}
	for {
		res.Attempts++
		res.Value, res.Err = p.runOnce(jctx, sims, t.job)
		if res.Err == nil || res.Attempts > p.cfg.Retries ||
			!IsTransient(res.Err) || jctx.Err() != nil {
			break
		}
		p.retries.Add(1)
	}
	if res.Err != nil {
		p.failed.Add(1)
	} else {
		p.completed.Add(1)
	}
	t.res = res
}

// runOnce is the panic-isolation boundary: a panicking job function (or
// guest that trips one in the simulator) fails this job only.
func (p *Pool) runOnce(ctx context.Context, sims *Sims, job Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return job.Fn(ctx, sims)
}

// PanicError is a job that panicked, caught at the worker boundary.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: job panicked: %v", e.Value)
}

// Transient marks err as retryable: the pool re-runs the job up to
// Config.Retries times. Use it for setup failures that may succeed on a
// second try; deterministic failures (compile errors, guest faults,
// fuel exhaustion) must not be wrapped.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// IsTransient reports whether err is marked retryable anywhere in its
// chain.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
