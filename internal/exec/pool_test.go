package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// valueJob returns v after an optional delay — the minimal job shape
// for exercising the pool machinery itself.
func valueJob(key string, v any, delay time.Duration) Job {
	return Job{Key: key, Fn: func(ctx context.Context, _ *Sims) (any, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return v, nil
	}}
}

// TestBatchOrdering pins the determinism contract: RunBatch results are
// ordered by submission index no matter which worker finishes first.
// Earlier jobs sleep longer, so completion order is roughly reversed.
func TestBatchOrdering(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	const n = 16
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = valueJob(fmt.Sprintf("j%d", i), i, time.Duration(n-i)*time.Millisecond)
	}
	results := p.RunBatch(context.Background(), jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Err)
		}
		if res.Value.(int) != i {
			t.Errorf("slot %d holds value %v, want %d", i, res.Value, i)
		}
	}
}

// TestProducersWorkersStress hammers one pool from many producer
// goroutines — the shape the race detector needs to see.
func TestProducersWorkersStress(t *testing.T) {
	p := NewPool(Config{Workers: 5, Queue: 3})
	defer p.Close()
	const producers, perProducer = 8, 40
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := g*perProducer + i
				tk, err := p.Submit(context.Background(), valueJob("stress", v, 0))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				res, err := tk.Result(context.Background())
				if err != nil || res.Err != nil {
					t.Errorf("result: %v / %v", err, res.Err)
					return
				}
				sum.Add(int64(res.Value.(int)))
			}
		}(g)
	}
	wg.Wait()
	total := int64(producers*perProducer) * int64(producers*perProducer-1) / 2
	if sum.Load() != total {
		t.Errorf("value sum %d, want %d", sum.Load(), total)
	}
	st := p.Stats()
	if st.Completed != producers*perProducer {
		t.Errorf("completed %d, want %d", st.Completed, producers*perProducer)
	}
	if st.Failed != 0 || st.Panics != 0 {
		t.Errorf("failed=%d panics=%d, want 0/0", st.Failed, st.Panics)
	}
}

// TestCancellationMidJob cancels the submitter's context while the job
// is running; the job must observe it and fail with the context error.
func TestCancellationMidJob(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := p.Submit(ctx, Job{Key: "cancel", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	res, err := tk.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("job error = %v, want context.Canceled", res.Err)
	}
}

// TestShutdownWhileQueued fills the queue behind a blocked worker, then
// shuts down: the running job and every queued job must terminate with
// a cancellation error, and Shutdown must return promptly.
func TestShutdownWhileQueued(t *testing.T) {
	p := NewPool(Config{Workers: 1, Queue: 4})
	started := make(chan struct{})
	blocker, err := p.Submit(context.Background(), Job{Key: "blocker", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queued []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := p.Submit(context.Background(), valueJob("queued", i, 0))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, tk)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := p.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res, _ := blocker.Result(context.Background())
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("blocker error = %v, want context.Canceled", res.Err)
	}
	for i, tk := range queued {
		res, _ := tk.Result(context.Background())
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("queued job %d error = %v, want context.Canceled", i, res.Err)
		}
	}
	if _, err := p.Submit(context.Background(), valueJob("late", 0, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown = %v, want ErrClosed", err)
	}
}

// TestSubmitAfterClose pins the intake-stop half of Close.
func TestSubmitAfterClose(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	p.Close()
	if _, err := p.Submit(context.Background(), valueJob("late", 0, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

// TestCloseDrains pins the drain half: jobs accepted before Close all
// complete even though intake has stopped.
func TestCloseDrains(t *testing.T) {
	p := NewPool(Config{Workers: 2, Queue: 8})
	var done atomic.Int64
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := p.Submit(context.Background(), Job{Key: "drain", Fn: func(ctx context.Context, _ *Sims) (any, error) {
			time.Sleep(2 * time.Millisecond)
			done.Add(1)
			return nil, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	p.Close()
	if done.Load() != 8 {
		t.Errorf("after Close, %d jobs done, want 8", done.Load())
	}
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Errorf("ticket %d not done after Close", i)
		}
	}
}

// TestPanicIsolation runs a panicking job between two good ones: the
// panic becomes that job's *PanicError, the worker survives, and the
// neighbours are untouched.
func TestPanicIsolation(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	jobs := []Job{
		valueJob("before", "ok", 0),
		{Key: "boom", Fn: func(ctx context.Context, _ *Sims) (any, error) { panic("guest exploded") }},
		valueJob("after", "ok", 0),
	}
	results := p.RunBatch(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("neighbour jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panicking job error = %v, want *PanicError", results[1].Err)
	}
	if pe.Value != "guest exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %v (stack %d bytes)", pe.Value, len(pe.Stack))
	}
	if st := p.Stats(); st.Panics != 1 || st.Failed != 1 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 1 panic, 1 failed, 2 completed", st)
	}
}

// TestTransientRetry: a job that fails transiently twice succeeds on
// the third attempt, and Attempts records the history. A persistent
// transient failure stops after Retries re-runs; a non-transient
// failure is never retried.
func TestTransientRetry(t *testing.T) {
	p := NewPool(Config{Workers: 1, Retries: 2})
	defer p.Close()

	var calls atomic.Int64
	tk, _ := p.Submit(context.Background(), Job{Key: "flaky", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("warming up"))
		}
		return "done", nil
	}})
	res, _ := tk.Result(context.Background())
	if res.Err != nil || res.Attempts != 3 {
		t.Errorf("flaky job: err=%v attempts=%d, want nil/3", res.Err, res.Attempts)
	}

	tk, _ = p.Submit(context.Background(), Job{Key: "hopeless", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		return nil, Transient(errors.New("never works"))
	}})
	res, _ = tk.Result(context.Background())
	if res.Err == nil || res.Attempts != 3 {
		t.Errorf("hopeless job: err=%v attempts=%d, want error after 3 attempts", res.Err, res.Attempts)
	}
	if !IsTransient(res.Err) {
		t.Errorf("hopeless job error lost its transient mark: %v", res.Err)
	}

	tk, _ = p.Submit(context.Background(), Job{Key: "fatal", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		return nil, errors.New("deterministic failure")
	}})
	res, _ = tk.Result(context.Background())
	if res.Err == nil || res.Attempts != 1 {
		t.Errorf("fatal job: err=%v attempts=%d, want error on first attempt", res.Err, res.Attempts)
	}
	if st := p.Stats(); st.Retries != 4 {
		t.Errorf("retries = %d, want 4 (2 flaky + 2 hopeless)", st.Retries)
	}
}

// TestJobTimeout bounds a job that never returns on its own.
func TestJobTimeout(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	defer p.Close()
	tk, _ := p.Submit(context.Background(), Job{
		Key:     "slow",
		Timeout: 10 * time.Millisecond,
		Fn: func(ctx context.Context, _ *Sims) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	res, _ := tk.Result(context.Background())
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want context.DeadlineExceeded", res.Err)
	}
}

// TestDefaultTimeout applies the pool-wide bound when the job sets none.
func TestDefaultTimeout(t *testing.T) {
	p := NewPool(Config{Workers: 1, DefaultTimeout: 10 * time.Millisecond})
	defer p.Close()
	tk, _ := p.Submit(context.Background(), Job{Key: "slow", Fn: func(ctx context.Context, _ *Sims) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	res, _ := tk.Result(context.Background())
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want context.DeadlineExceeded", res.Err)
	}
}

// TestTransientHelpers pins the wrapper round trip.
func TestTransientHelpers(t *testing.T) {
	base := errors.New("base")
	if !IsTransient(Transient(base)) {
		t.Error("Transient(err) not recognized")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(base))) {
		t.Error("wrapped transient not recognized")
	}
	if IsTransient(base) {
		t.Error("plain error misread as transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) should be nil")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient must preserve the error chain")
	}
}
