GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full verification suite: tier-1 (build + test) plus vet and the
# race detector. Same as scripts/check.sh.
check: build vet test race

# Host-speed benchmarks, including the icache on/off comparison.
bench:
	$(GO) test -bench=Risc -benchmem ./...
