GO ?= go

.PHONY: build test vet staticcheck race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (no network required to develop) but
# runs unconditionally in CI, which installs it first.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

race:
	$(GO) test -race ./...

# The full verification suite: tier-1 (build + test) plus vet,
# staticcheck (when installed) and the race detector. Same as
# scripts/check.sh.
check: build vet staticcheck test race

# Host-speed benchmarks, including the icache on/off comparison.
bench:
	$(GO) test -bench=Risc -benchmem ./...
