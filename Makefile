GO ?= go

.PHONY: build test vet staticcheck race leakcheck check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (no network required to develop) but
# runs unconditionally in CI, which installs it first.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

race:
	$(GO) test -race ./...

# Session-lifecycle goroutine leak checks, run on their own so a leak
# is attributable: every way a session dies (close, idle reap, drain,
# drain with an open SSE stream) must return the process to its
# pre-session goroutine count.
leakcheck:
	$(GO) test -count=2 ./internal/session -run 'TestSessionGoroutineLeak'
	$(GO) test -count=2 ./cmd/risc1-serve -run 'TestServeDrainClosesOpenStream|TestDrainCancelsInflightWithoutLeaking'

# The full verification suite: tier-1 (build + test) plus vet,
# staticcheck (when installed), the race detector, and the session
# goroutine-leak checks. Same as scripts/check.sh.
check: build vet staticcheck test race leakcheck

# Host-speed benchmarks, including the icache on/off comparison.
bench:
	$(GO) test -bench=Risc -benchmem ./...
